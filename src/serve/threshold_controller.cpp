#include "serve/threshold_controller.hpp"

#include <algorithm>

#include "core/threshold.hpp"
#include "util/error.hpp"

namespace appeal::serve {

double target_sr_for_latency_slo(const collab::cost_model& link,
                                 double slo_ms) {
  // overall_latency_ms(sr) = edge_ms + (1 - sr) * offload_ms is linear in
  // sr, so the SLO maps to sr >= 1 - (slo - edge_ms) / offload_ms.
  const double edge_ms = link.overall_latency_ms(1.0);
  const double offload_ms = link.overall_latency_ms(0.0) - edge_ms;
  APPEAL_CHECK(offload_ms > 0.0,
               "cost model has no offload latency to trade against");
  const double sr = 1.0 - (slo_ms - edge_ms) / offload_ms;
  return std::clamp(sr, 0.0, 1.0);
}

threshold_controller::threshold_controller(const threshold_config& cfg,
                                           const collab::cost_model* link)
    : config_(cfg),
      target_sr_(cfg.target_sr),
      delta_(cfg.initial_delta),
      observed_sr_(cfg.target_sr) {
  APPEAL_CHECK(cfg.window > 0, "score window must be non-empty");
  APPEAL_CHECK(cfg.recalibrate_every > 0,
               "recalibration interval must be positive");
  APPEAL_CHECK(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0,
               "ema_alpha outside (0, 1]");
  if (cfg.adapt == threshold_config::mode::latency_slo) {
    APPEAL_CHECK(link != nullptr, "latency_slo mode requires a cost model");
    target_sr_.store(target_sr_for_latency_slo(*link, cfg.latency_slo_ms),
                     std::memory_order_relaxed);
    // Seed the moving offload estimate with the model's prediction;
    // observe_cloud_ms replaces it with measurements as appeals complete.
    slo_edge_ms_ = link->overall_latency_ms(1.0);
    offload_ema_ms_ = link->overall_latency_ms(0.0) - slo_edge_ms_;
  }
  const double target = target_sr_.load(std::memory_order_relaxed);
  APPEAL_CHECK(target >= 0.0 && target <= 1.0,
               "target skipping rate outside [0, 1]");
  observed_sr_.store(target, std::memory_order_relaxed);
  window_.resize(config_.window, 0.0);
}

void threshold_controller::observe_cloud_ms(double offload_ms) {
  if (config_.adapt != threshold_config::mode::latency_slo) return;
  if (!(offload_ms > 0.0)) return;  // also drops NaN
  std::lock_guard<std::mutex> lock(mutex_);
  offload_ema_ms_ += config_.ema_alpha * (offload_ms - offload_ema_ms_);
  if (offload_ema_ms_ <= 0.0) return;
  const double sr =
      1.0 - (config_.latency_slo_ms - slo_edge_ms_) / offload_ema_ms_;
  target_sr_.store(std::clamp(sr, 0.0, 1.0), std::memory_order_relaxed);
}

double threshold_controller::offload_estimate_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return offload_ema_ms_;
}

void threshold_controller::observe(const std::vector<double>& scores,
                                   std::size_t skipped) {
  if (scores.empty()) return;
  APPEAL_CHECK(skipped <= scores.size(),
               "skipped count exceeds the batch size");

  std::lock_guard<std::mutex> lock(mutex_);

  // EMA of the per-batch skipping rate. The first observation seeds the
  // average so early readings are not biased toward the prior.
  const double batch_sr =
      static_cast<double>(skipped) / static_cast<double>(scores.size());
  double prev = observed_sr_.load(std::memory_order_relaxed);
  if (!seen_observation_) prev = batch_sr;
  seen_observation_ = true;
  observed_sr_.store(prev + config_.ema_alpha * (batch_sr - prev),
                     std::memory_order_relaxed);

  if (config_.adapt == threshold_config::mode::fixed) return;
  for (const double s : scores) {
    window_[window_next_] = s;
    window_next_ = (window_next_ + 1) % window_.size();
    window_count_ = std::min(window_count_ + 1, window_.size());
  }
  since_recalibrate_ += scores.size();
  if (since_recalibrate_ < config_.recalibrate_every) return;
  since_recalibrate_ = 0;

  std::vector<double> sample(window_.begin(),
                             window_.begin() +
                                 static_cast<std::ptrdiff_t>(window_count_));
  delta_.store(core::delta_for_skipping_rate(
                   sample, target_sr_.load(std::memory_order_relaxed)),
               std::memory_order_relaxed);
  recalibrations_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace appeal::serve
