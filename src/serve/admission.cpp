#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appeal::serve {

namespace {

std::size_t scaled_limit(std::size_t capacity, double factor) {
  const double raw = std::ceil(static_cast<double>(capacity) * factor);
  return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
}

const char* policy_name(admission_policy p) {
  switch (p) {
    case admission_policy::block:
      return "block";
    case admission_policy::shed:
      return "shed";
    case admission_policy::edge_only:
      return "edge_only";
  }
  return "unknown";
}

obs::counter& verdict_counter(admission_policy p, const char* verdict) {
  return obs::default_registry().get_counter(
      "appeal_admission_total", {{"policy", policy_name(p)},
                                 {"verdict", verdict}},
      "admission verdicts at submit(), by policy");
}

}  // namespace

admission_controller::admission_controller(const admission_config& cfg)
    : config_(cfg),
      metric_admitted_(verdict_counter(cfg.policy, "admitted")),
      metric_degraded_(verdict_counter(cfg.policy, "degraded")),
      metric_shed_(verdict_counter(cfg.policy, "shed")) {
  APPEAL_CHECK(cfg.batch_headroom > 0.0 && cfg.batch_headroom <= 1.0,
               "batch_headroom must be in (0, 1]");
  APPEAL_CHECK(cfg.degrade_headroom >= 1.0,
               "degrade_headroom must be >= 1");
  APPEAL_CHECK(cfg.pressure_batch_scale > 0.0 &&
                   cfg.pressure_batch_scale <= 1.0,
               "pressure_batch_scale must be in (0, 1]");
  APPEAL_CHECK(cfg.pressure_degrade_fraction > 0.0 &&
                   cfg.pressure_degrade_fraction <= 1.0,
               "pressure_degrade_fraction must be in (0, 1]");
}

admission_verdict admission_controller::count(admission_verdict v) {
  switch (v) {
    case admission_verdict::admitted:
      admitted_.fetch_add(1, std::memory_order_relaxed);
      metric_admitted_.add(1);
      break;
    case admission_verdict::degraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      metric_degraded_.add(1);
      break;
    case admission_verdict::shed:
      shed_.fetch_add(1, std::memory_order_relaxed);
      metric_shed_.add(1);
      break;
    case admission_verdict::closed:
      break;
  }
  return v;
}

admission_verdict admission_controller::try_admit(request_queue& queue,
                                                  request& r) {
  const bool pressured = pressure_.load(std::memory_order_relaxed);
  std::size_t class_limit =
      r.priority == priority_class::batch
          ? scaled_limit(queue.capacity(),
                         config_.batch_headroom *
                             (pressured ? config_.pressure_batch_scale : 1.0))
          : queue.capacity();
  if (pressured && config_.policy == admission_policy::edge_only &&
      r.priority != priority_class::batch) {
    // Under cloud pressure interactive traffic degrades to the edge
    // early: filling the queue with appeals bound for an overloaded
    // uplink only converts backlog into retries.
    class_limit =
        scaled_limit(queue.capacity(), config_.pressure_degrade_fraction);
  }

  if (config_.policy == admission_policy::block) {
    // Backpressure for every class: the queue's own wait is the policy
    // (batch producers wait at their lower headroom limit).
    if (!queue.push(std::move(r), class_limit)) {
      return count(admission_verdict::closed);
    }
    return count(admission_verdict::admitted);
  }

  switch (queue.try_push(std::move(r), class_limit)) {
    case request_queue::push_result::ok:
      return count(admission_verdict::admitted);
    case request_queue::push_result::closed:
      return count(admission_verdict::closed);
    case request_queue::push_result::full:
      break;
  }

  if (config_.policy == admission_policy::edge_only &&
      r.priority != priority_class::batch) {
    // The degrade overflow band is reserved for interactive traffic:
    // batch-class requests stay capped at their headroom in every policy.
    r.force_edge = true;
    const std::size_t overflow =
        scaled_limit(queue.capacity(), config_.degrade_headroom);
    switch (queue.try_push(std::move(r), overflow)) {
      case request_queue::push_result::ok:
        return count(admission_verdict::degraded);
      case request_queue::push_result::closed:
        return count(admission_verdict::closed);
      case request_queue::push_result::full:
        r.force_edge = false;
        break;
    }
  }

  return count(admission_verdict::shed);
}

}  // namespace appeal::serve
