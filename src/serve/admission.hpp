// Admission control at the request_queue boundary.
//
// PR 1's engine blocked producers unconditionally when the queue filled —
// correct for a closed-loop bench, wrong for a front door serving open
// traffic. The admission controller makes the full-queue decision
// explicit, per deployment:
//   - `block`      — classic backpressure: the submitting thread waits
//                    for space (the PR 1 behavior, still the default);
//   - `shed`       — never block: a full queue refuses the request and
//                    the client gets an immediate `request_status::shed`
//                    response;
//   - `edge_only`  — degrade before refusing: a full queue still admits
//                    the request (up to `degrade_headroom` × capacity)
//                    but pins it to the edge (`route::edge_degraded`, no
//                    cloud appeal) so it drains at edge speed instead of
//                    queueing behind the slow uplink; beyond the degrade
//                    headroom it sheds.
// Batch-class requests are admitted only while the queue is below
// `batch_headroom` × capacity, reserving the rest for interactive
// traffic in every policy (under `block` they wait at that limit, under
// `shed`/`edge_only` they shed there — the degrade overflow band is
// interactive-only).
//
// The controller also reacts to cloud-link pressure: when the engine
// reports the channel's circuit breaker open or an overload streak in
// progress (set_cloud_pressure), batch admission tightens by
// `pressure_batch_scale` and — under `edge_only` — interactive requests
// degrade to the edge at `pressure_degrade_fraction` × capacity instead
// of waiting for the queue to fill, since appeals would only feed the
// overload.
#pragma once

#include <atomic>
#include <cstddef>

#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"

namespace appeal::serve {

enum class admission_policy { block, shed, edge_only };

struct admission_config {
  admission_policy policy = admission_policy::block;
  /// Fraction of queue capacity available to batch-class requests
  /// (interactive always gets the full capacity).
  double batch_headroom = 0.75;
  /// `edge_only` overflow bound as a multiple of queue capacity.
  double degrade_headroom = 2.0;
  /// Under cloud pressure, batch_headroom is multiplied by this (batch
  /// traffic is the first to give way when the uplink is sick).
  double pressure_batch_scale = 0.5;
  /// Under cloud pressure with `edge_only`, interactive requests degrade
  /// to the edge once the queue passes this fraction of capacity
  /// (instead of only when full).
  double pressure_degrade_fraction = 0.5;
};

/// What happened to a request at the admission boundary.
enum class admission_verdict { admitted, degraded, shed, closed };

/// Applies one admission_config at one queue. Thread-safe; the verdict
/// counters are cheap introspection for tests and stats renders (the
/// canonical shed/degraded counts live in serve_stats, fed by the
/// engine at completion time).
class admission_controller {
 public:
  explicit admission_controller(const admission_config& cfg);

  /// Decides and performs the enqueue. On `admitted`/`degraded` the
  /// request has been moved into the queue (degraded requests have
  /// `force_edge` set); on `shed`/`closed` it is left with the caller so
  /// the promise can still be fulfilled.
  admission_verdict try_admit(request_queue& queue, request& r);

  const admission_config& config() const { return config_; }

  /// Cloud-link pressure signal (engine::submit polls the channel's
  /// breaker/overload state and mirrors it here). Lock-free.
  void set_cloud_pressure(bool pressured) {
    pressure_.store(pressured, std::memory_order_relaxed);
  }
  bool cloud_pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  std::size_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::size_t degraded() const {
    return degraded_.load(std::memory_order_relaxed);
  }
  std::size_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  admission_verdict count(admission_verdict v);

  admission_config config_;
  std::atomic<bool> pressure_{false};
  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> degraded_{0};
  std::atomic<std::size_t> shed_{0};
  /// Registry mirrors of the verdict counters, labeled {policy=...}. The
  /// local atomics stay authoritative for per-instance reads (several
  /// engines with the same policy share one registry instrument).
  obs::counter& metric_admitted_;
  obs::counter& metric_degraded_;
  obs::counter& metric_shed_;
};

}  // namespace appeal::serve
