// Streaming serving metrics.
//
// Thread-safe accumulator fed by edge workers, the cloud channel, and the
// admission path at request completion. One serve_stats instance serves
// as the aggregation point for a whole deployment: every engine shard
// records into the deployment's shared instance, so the snapshot is the
// per-deployment view the server reports. Latency quantiles come from a
// fixed-bin util::histogram (constant memory, p50/p95/p99 read from the
// bin CDF); completions beyond the histogram range are clamped into the
// top bin *and* counted in `overflow`, so a too-small `latency_range_ms`
// is visible instead of silently flattening p99. Throughput uses the
// shared util::stopwatch; online accuracy counts only requests that
// carried ground-truth labels (the collab::oracle protocol supplies them
// in evaluation runs). Shed and expired requests never ran inference:
// they are counted apart and excluded from latency, SR, and accuracy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/metrics.hpp"
#include "serve/request.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"

namespace appeal::serve {

struct serve_stats_config {
  double latency_range_ms = 500.0;  // histogram upper edge (overflow clamps)
  std::size_t latency_bins = 5000;  // 0.1 ms resolution at the default range
  /// Value of the {deployment=...} label on this instance's instruments
  /// in obs::default_registry() (appeal_requests_total and friends, the
  /// appeal_latency_ms summary). Empty = unlabeled. Registry counters
  /// are process-cumulative — reset() opens a new snapshot window but
  /// never rewinds them (Prometheus counters are monotonic by contract).
  std::string deployment;
};

/// Point-in-time view of the counters.
struct stats_snapshot {
  std::size_t completed = 0;     // requests that produced a prediction
  std::size_t edge_kept = 0;     // route::edge (score >= δ)
  std::size_t edge_degraded = 0; // route::edge_degraded (admission pinned)
  std::size_t appealed = 0;      // route::cloud
  std::size_t shed = 0;          // refused at admission (status::shed)
  std::size_t expired = 0;       // deadline passed before an edge worker
  std::size_t cloud_expired = 0; // appealed, then shed in the cloud's queue
  std::size_t overflow = 0;      // latencies beyond the histogram range
  std::size_t labeled = 0;
  std::size_t labeled_correct = 0;
  std::size_t cloud_labeled = 0;         // appealed requests with labels
  std::size_t cloud_labeled_correct = 0; // ...answered correctly (cloud path)

  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;   // completed / elapsed
  double achieved_sr = 0.0;      // (edge_kept + edge_degraded) / completed
  double shed_rate = 0.0;        // (shed + expired + cloud_expired) / submitted
  double online_accuracy = 0.0;  // labeled_correct / labeled
  double cloud_accuracy = 0.0;   // cloud_labeled_correct / cloud_labeled
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_ms = 0.0;    // enqueue -> batch pull
  double mean_link_ms = 0.0;     // uplink + cloud time over appeals
  /// Cloud-reported queue wait + scoring time over appeals (socket
  /// transports report it per response; 0 under the simulator).
  double mean_cloud_ms = 0.0;

  // Cloud-link counters, overlaid from the deployment's cloud_channel at
  // snapshot time (engine::snapshot / deployment::snapshot); a raw
  // serve_stats::snapshot() leaves them zero.
  std::size_t appeal_batches = 0;       // framed batches on the wire
  std::size_t appeals_on_wire = 0;      // appeals those batches carried
  double mean_appeals_per_batch = 0.0;  // coalescing factor
  std::size_t wire_bytes_tx = 0;        // appeal frames (or sim-equivalent)
  std::size_t wire_bytes_rx = 0;        // response frames
  std::size_t link_fallbacks = 0;       // appeals answered locally (link down)
  std::size_t appeal_retries = 0;       // overloaded appeals re-sent
  std::size_t appeal_overloaded = 0;    // overloaded answers received
  std::size_t breaker_opens = 0;        // circuit-breaker trips
  std::uint8_t breaker_state = 0;       // 0 closed / 1 open / 2 half-open
  std::size_t split_appeals = 0;        // appeals shipped as feature maps
  std::size_t split_bytes_saved = 0;    // uplink bytes saved vs raw input
  std::size_t split_rejected = 0;       // split appeals the cloud rejected
  std::uint32_t split_cut = 0;          // active cut id (0 = raw input)

  /// Everything that entered submit() and has completed by now (any
  /// status): completed + shed + expired + cloud_expired — shed_rate's
  /// denominator, exported so consumers never have to re-derive it.
  std::size_t submitted = 0;
};

class serve_stats {
 public:
  explicit serve_stats(const serve_stats_config& cfg = {});

  /// Records one finished request. Responses with a non-ok status are
  /// counted as shed/expired and touch no other statistic; `correct` is
  /// ignored when the request carried no label.
  void record(const response& r, bool labeled, bool correct);

  /// Clears every counter, the latency histogram, and the clock — used to
  /// discard a warmup phase so a measurement window starts clean.
  void reset();

  stats_snapshot snapshot() const;

  /// Multi-line human-readable rendering of a snapshot.
  static std::string render(const stats_snapshot& s);

 private:
  double quantile_ms_locked(double q) const;

  mutable std::mutex mutex_;
  serve_stats_config config_;
  util::stopwatch clock_;
  util::histogram latency_;
  std::size_t completed_ = 0;
  std::size_t edge_kept_ = 0;
  std::size_t edge_degraded_ = 0;
  std::size_t appealed_ = 0;
  std::size_t shed_ = 0;
  std::size_t expired_ = 0;
  std::size_t cloud_expired_ = 0;
  std::size_t overflow_ = 0;
  std::size_t labeled_ = 0;
  std::size_t labeled_correct_ = 0;
  std::size_t cloud_labeled_ = 0;
  std::size_t cloud_labeled_correct_ = 0;
  double queue_ms_sum_ = 0.0;
  double link_ms_sum_ = 0.0;
  double cloud_ms_sum_ = 0.0;

  /// obs::default_registry() instruments mirroring the counters above,
  /// labeled {deployment=config_.deployment}. Resolved once here; record()
  /// bumps them wait-free outside this instance's mutex semantics (the
  /// registry shards internally).
  obs::counter& metric_submitted_;
  obs::counter& metric_completed_;
  obs::counter& metric_edge_;
  obs::counter& metric_appealed_;
  obs::counter& metric_shed_;
  obs::counter& metric_expired_;
  obs::counter& metric_cloud_expired_;
  obs::histogram& metric_latency_;
};

}  // namespace appeal::serve
