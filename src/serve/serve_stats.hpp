// Streaming serving metrics.
//
// Thread-safe accumulator fed by edge workers and the cloud channel at
// request completion. Latency quantiles come from a fixed-bin
// util::histogram (constant memory, p50/p95/p99 read from the bin CDF);
// throughput uses the shared util::stopwatch; online accuracy counts only
// requests that carried ground-truth labels (the collab::oracle protocol
// supplies them in evaluation runs).
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "serve/request.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"

namespace appeal::serve {

struct serve_stats_config {
  double latency_range_ms = 500.0;  // histogram upper edge (overflow clamps)
  std::size_t latency_bins = 5000;  // 0.1 ms resolution at the default range
};

/// Point-in-time view of the counters.
struct stats_snapshot {
  std::size_t completed = 0;
  std::size_t edge_kept = 0;
  std::size_t appealed = 0;
  std::size_t labeled = 0;
  std::size_t labeled_correct = 0;

  double elapsed_seconds = 0.0;
  double throughput_rps = 0.0;   // completed / elapsed
  double achieved_sr = 0.0;      // edge_kept / completed
  double online_accuracy = 0.0;  // labeled_correct / labeled
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_queue_ms = 0.0;    // enqueue -> batch pull
  double mean_link_ms = 0.0;     // simulated uplink time over appeals
};

class serve_stats {
 public:
  explicit serve_stats(const serve_stats_config& cfg = {});

  /// Records one completed request. `correct` is ignored when the request
  /// carried no label.
  void record(const response& r, bool labeled, bool correct);

  /// Clears every counter, the latency histogram, and the clock — used to
  /// discard a warmup phase so a measurement window starts clean.
  void reset();

  stats_snapshot snapshot() const;

  /// Multi-line human-readable rendering of a snapshot.
  static std::string render(const stats_snapshot& s);

 private:
  double quantile_ms_locked(double q) const;

  mutable std::mutex mutex_;
  serve_stats_config config_;
  util::stopwatch clock_;
  util::histogram latency_;
  std::size_t completed_ = 0;
  std::size_t edge_kept_ = 0;
  std::size_t appealed_ = 0;
  std::size_t labeled_ = 0;
  std::size_t labeled_correct_ = 0;
  double queue_ms_sum_ = 0.0;
  double link_ms_sum_ = 0.0;
};

}  // namespace appeal::serve
