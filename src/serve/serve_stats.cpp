#include "serve/serve_stats.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace appeal::serve {

serve_stats::serve_stats(const serve_stats_config& cfg)
    : config_(cfg), latency_(0.0, cfg.latency_range_ms, cfg.latency_bins) {
  APPEAL_CHECK(cfg.latency_range_ms > 0.0, "latency range must be positive");
}

void serve_stats::record(const response& r, bool labeled, bool correct) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  if (r.taken == route::edge) {
    ++edge_kept_;
  } else {
    ++appealed_;
    link_ms_sum_ += r.link_ms;
  }
  if (labeled) {
    ++labeled_;
    if (correct) ++labeled_correct_;
  }
  queue_ms_sum_ += r.queue_ms;
  latency_.add(r.latency_ms);
}

void serve_stats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_ = util::histogram(0.0, config_.latency_range_ms,
                             config_.latency_bins);
  completed_ = 0;
  edge_kept_ = 0;
  appealed_ = 0;
  labeled_ = 0;
  labeled_correct_ = 0;
  queue_ms_sum_ = 0.0;
  link_ms_sum_ = 0.0;
  clock_.reset();
}

double serve_stats::quantile_ms_locked(double q) const {
  const auto& counts = latency_.counts();
  const std::size_t total = latency_.total();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= target) return latency_.bin_center(i);
  }
  return latency_.bin_center(counts.size() - 1);
}

stats_snapshot serve_stats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_snapshot s;
  s.completed = completed_;
  s.edge_kept = edge_kept_;
  s.appealed = appealed_;
  s.labeled = labeled_;
  s.labeled_correct = labeled_correct_;
  s.elapsed_seconds = clock_.elapsed_seconds();
  if (s.elapsed_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(completed_) / s.elapsed_seconds;
  }
  if (completed_ > 0) {
    s.achieved_sr =
        static_cast<double>(edge_kept_) / static_cast<double>(completed_);
    s.mean_queue_ms = queue_ms_sum_ / static_cast<double>(completed_);
  }
  if (labeled_ > 0) {
    s.online_accuracy =
        static_cast<double>(labeled_correct_) / static_cast<double>(labeled_);
  }
  if (appealed_ > 0) {
    s.mean_link_ms = link_ms_sum_ / static_cast<double>(appealed_);
  }
  s.p50_ms = quantile_ms_locked(0.50);
  s.p95_ms = quantile_ms_locked(0.95);
  s.p99_ms = quantile_ms_locked(0.99);
  return s;
}

std::string serve_stats::render(const stats_snapshot& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "completed        : %zu (edge %zu / cloud %zu)\n"
      "throughput       : %.0f req/s over %.2f s\n"
      "latency          : p50 %.3f ms  p95 %.3f ms  p99 %.3f ms\n"
      "mean queue wait  : %.3f ms\n"
      "mean link time   : %.3f ms (appealed requests)\n"
      "achieved SR      : %.2f%%\n"
      "online accuracy  : %.2f%% (%zu labeled)\n",
      s.completed, s.edge_kept, s.appealed, s.throughput_rps,
      s.elapsed_seconds, s.p50_ms, s.p95_ms, s.p99_ms, s.mean_queue_ms,
      s.mean_link_ms, s.achieved_sr * 100.0, s.online_accuracy * 100.0,
      s.labeled);
  return std::string(buf);
}

}  // namespace appeal::serve
