#include "serve/serve_stats.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace appeal::serve {

namespace {

obs::label_set deployment_labels(const std::string& deployment) {
  if (deployment.empty()) return {};
  return {{"deployment", deployment}};
}

}  // namespace

serve_stats::serve_stats(const serve_stats_config& cfg)
    : config_(cfg),
      latency_(0.0, cfg.latency_range_ms, cfg.latency_bins),
      metric_submitted_(obs::default_registry().get_counter(
          "appeal_requests_total", deployment_labels(cfg.deployment),
          "requests that entered submit() and have completed (any status)")),
      metric_completed_(obs::default_registry().get_counter(
          "appeal_completed_total", deployment_labels(cfg.deployment),
          "requests that produced a prediction")),
      metric_edge_(obs::default_registry().get_counter(
          "appeal_edge_total", deployment_labels(cfg.deployment),
          "requests answered on the edge (score >= delta or degraded)")),
      metric_appealed_(obs::default_registry().get_counter(
          "appeal_appealed_total", deployment_labels(cfg.deployment),
          "requests appealed to the cloud")),
      metric_shed_(obs::default_registry().get_counter(
          "appeal_shed_total", deployment_labels(cfg.deployment),
          "requests refused at admission")),
      metric_expired_(obs::default_registry().get_counter(
          "appeal_expired_total", deployment_labels(cfg.deployment),
          "requests whose deadline passed before an edge worker")),
      metric_cloud_expired_(obs::default_registry().get_counter(
          "appeal_cloud_expired_requests_total",
          deployment_labels(cfg.deployment),
          "appealed requests shed in the cloud's work queue")),
      metric_latency_(obs::default_registry().get_histogram(
          "appeal_latency_ms", deployment_labels(cfg.deployment), 0.0,
          cfg.latency_range_ms, cfg.latency_bins,
          "end-to-end latency of completed requests")) {
  APPEAL_CHECK(cfg.latency_range_ms > 0.0, "latency range must be positive");
}

void serve_stats::record(const response& r, bool labeled, bool correct) {
  metric_submitted_.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (r.status == request_status::shed) {
    ++shed_;
    metric_shed_.add(1);
    return;
  }
  if (r.status == request_status::expired) {
    // route::cloud means the request DID appeal and the cloud's scheduler
    // shed it (deadline blown in its work queue) — count it apart from
    // edge-side expiry so deadline pressure on the link is visible.
    if (r.taken == route::cloud) {
      ++cloud_expired_;
      metric_cloud_expired_.add(1);
    } else {
      ++expired_;
      metric_expired_.add(1);
    }
    return;
  }
  ++completed_;
  metric_completed_.add(1);
  switch (r.taken) {
    case route::edge:
      ++edge_kept_;
      metric_edge_.add(1);
      break;
    case route::edge_degraded:
      ++edge_degraded_;
      metric_edge_.add(1);
      break;
    case route::cloud:
      ++appealed_;
      metric_appealed_.add(1);
      link_ms_sum_ += r.link_ms;
      cloud_ms_sum_ += r.cloud_ms;
      if (labeled) {
        ++cloud_labeled_;
        if (correct) ++cloud_labeled_correct_;
      }
      break;
  }
  if (labeled) {
    ++labeled_;
    if (correct) ++labeled_correct_;
  }
  queue_ms_sum_ += r.queue_ms;
  if (r.latency_ms >= config_.latency_range_ms) ++overflow_;
  latency_.add(r.latency_ms);
  metric_latency_.observe(r.latency_ms);
}

void serve_stats::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  latency_ = util::histogram(0.0, config_.latency_range_ms,
                             config_.latency_bins);
  completed_ = 0;
  edge_kept_ = 0;
  edge_degraded_ = 0;
  appealed_ = 0;
  shed_ = 0;
  expired_ = 0;
  cloud_expired_ = 0;
  overflow_ = 0;
  labeled_ = 0;
  labeled_correct_ = 0;
  cloud_labeled_ = 0;
  cloud_labeled_correct_ = 0;
  queue_ms_sum_ = 0.0;
  link_ms_sum_ = 0.0;
  cloud_ms_sum_ = 0.0;
  clock_.reset();
}

double serve_stats::quantile_ms_locked(double q) const {
  const auto& counts = latency_.counts();
  const std::size_t total = latency_.total();
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += static_cast<double>(counts[i]);
    if (cumulative >= target) return latency_.bin_center(i);
  }
  return latency_.bin_center(counts.size() - 1);
}

stats_snapshot serve_stats::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_snapshot s;
  s.completed = completed_;
  s.edge_kept = edge_kept_;
  s.edge_degraded = edge_degraded_;
  s.appealed = appealed_;
  s.shed = shed_;
  s.expired = expired_;
  s.cloud_expired = cloud_expired_;
  s.overflow = overflow_;
  s.labeled = labeled_;
  s.labeled_correct = labeled_correct_;
  s.cloud_labeled = cloud_labeled_;
  s.cloud_labeled_correct = cloud_labeled_correct_;
  s.submitted = completed_ + shed_ + expired_ + cloud_expired_;
  s.elapsed_seconds = clock_.elapsed_seconds();
  if (s.elapsed_seconds > 0.0) {
    s.throughput_rps = static_cast<double>(completed_) / s.elapsed_seconds;
  }
  if (completed_ > 0) {
    s.achieved_sr = static_cast<double>(edge_kept_ + edge_degraded_) /
                    static_cast<double>(completed_);
    s.mean_queue_ms = queue_ms_sum_ / static_cast<double>(completed_);
  }
  if (s.submitted > 0) {
    s.shed_rate = static_cast<double>(shed_ + expired_ + cloud_expired_) /
                  static_cast<double>(s.submitted);
  }
  if (labeled_ > 0) {
    s.online_accuracy =
        static_cast<double>(labeled_correct_) / static_cast<double>(labeled_);
  }
  if (cloud_labeled_ > 0) {
    s.cloud_accuracy = static_cast<double>(cloud_labeled_correct_) /
                       static_cast<double>(cloud_labeled_);
  }
  if (appealed_ > 0) {
    s.mean_link_ms = link_ms_sum_ / static_cast<double>(appealed_);
    s.mean_cloud_ms = cloud_ms_sum_ / static_cast<double>(appealed_);
  }
  s.p50_ms = quantile_ms_locked(0.50);
  s.p95_ms = quantile_ms_locked(0.95);
  s.p99_ms = quantile_ms_locked(0.99);
  return s;
}

std::string serve_stats::render(const stats_snapshot& s) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "completed        : %zu (edge %zu / degraded %zu / cloud %zu)\n"
      "shed             : %zu admission + %zu expired + %zu cloud-expired "
      "(%.2f%% of %zu submitted)\n"
      "throughput       : %.0f req/s over %.2f s\n"
      "latency          : p50 %.3f ms  p95 %.3f ms  p99 %.3f ms (%zu overflow)\n"
      "mean queue wait  : %.3f ms\n"
      "mean link time   : %.3f ms (appealed requests)\n"
      "achieved SR      : %.2f%%\n"
      "online accuracy  : %.2f%% (%zu labeled)\n",
      s.completed, s.edge_kept, s.edge_degraded, s.appealed, s.shed,
      s.expired, s.cloud_expired, s.shed_rate * 100.0, s.submitted,
      s.throughput_rps, s.elapsed_seconds, s.p50_ms, s.p95_ms, s.p99_ms,
      s.overflow, s.mean_queue_ms, s.mean_link_ms, s.achieved_sr * 100.0,
      s.online_accuracy * 100.0, s.labeled);
  std::string out(buf);
  if (s.cloud_labeled > 0) {
    std::snprintf(buf, sizeof(buf),
                  "cloud accuracy   : %.2f%% (%zu labeled appeals)\n",
                  s.cloud_accuracy * 100.0, s.cloud_labeled);
    out += buf;
  }
  if (s.appeal_batches > 0 || s.link_fallbacks > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "cloud link       : %zu appeals in %zu batches "
        "(%.2f appeals/batch), %zu B up / %zu B down, mean cloud %.3f ms, "
        "%zu local fallbacks\n",
        s.appeals_on_wire, s.appeal_batches, s.mean_appeals_per_batch,
        s.wire_bytes_tx, s.wire_bytes_rx, s.mean_cloud_ms, s.link_fallbacks);
    out += buf;
  }
  if (s.appeal_overloaded > 0 || s.appeal_retries > 0 || s.breaker_opens > 0) {
    static const char* kBreakerNames[] = {"closed", "open", "half-open"};
    const char* state =
        s.breaker_state < 3 ? kBreakerNames[s.breaker_state] : "?";
    std::snprintf(buf, sizeof(buf),
                  "link robustness  : %zu overloaded answers, %zu retries, "
                  "%zu breaker opens (breaker %s)\n",
                  s.appeal_overloaded, s.appeal_retries, s.breaker_opens,
                  state);
    out += buf;
  }
  return out;
}

}  // namespace appeal::serve
