#include "serve/pipeline/pipeline_node.hpp"

namespace appeal::serve::pipeline {

namespace {

obs::counter& node_counter(const char* family, const std::string& deployment,
                           const std::string& node, const char* help) {
  obs::label_set labels;
  if (!deployment.empty()) labels.emplace_back("deployment", deployment);
  labels.emplace_back("node", node);
  return obs::default_registry().get_counter(family, std::move(labels), help);
}

}  // namespace

pipeline_node::pipeline_node(std::string name, const std::string& deployment)
    : name_(std::move(name)),
      metric_in_(node_counter("appeal_node_in_total", deployment, name_,
                              "requests that entered this pipeline node")),
      metric_out_(node_counter("appeal_node_out_total", deployment, name_,
                               "requests this node forwarded downstream")),
      metric_egress_(
          node_counter("appeal_node_egress_total", deployment, name_,
                       "requests that left the graph at this node")) {}

void pipeline_graph::start_all() {
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) (*it)->start();
}

void pipeline_graph::drain_and_stop() {
  if (stopped_) return;
  stopped_ = true;
  for (pipeline_node* node : nodes_) {
    node->close_input();
    node->join();
  }
}

std::vector<node_stats> pipeline_graph::stats() const {
  std::vector<node_stats> out;
  out.reserve(nodes_.size());
  for (const pipeline_node* node : nodes_) out.push_back(node->stats());
  return out;
}

}  // namespace appeal::serve::pipeline
