// Pipeline-node framework: the stages the serving engine is composed of.
//
// A pipeline_node is one stage of the serving dataflow — it owns its
// worker thread(s) and pops work items off its input node_queue, pushing
// results into the next node's queue. Nodes are assembled into a
// pipeline_graph in topological order (upstream first); the graph drives
// the lifecycle:
//
//   start_all()       — spawn every node's threads, downstream first, so
//                       a consumer is always running before its producer
//                       can fill the connecting queue;
//   drain_and_stop()  — for each node in topological order: close its
//                       input edge, then join its threads. Because a
//                       closed node_queue drains before reporting closed,
//                       every item a node emitted before its input closed
//                       is consumed downstream before THAT node's input
//                       closes — shutdown loses nothing.
//
// Request conservation is a per-node ledger: every item entering a node
// counts `in`, every item forwarded downstream counts `out`, and every
// request that LEAVES the graph at this node (its promise fulfilled)
// counts `egress`. Once drained, in == out + egress at every node, each
// node's out equals the next node's in, and the sum of all egress equals
// the engine's submitted count. The ledger is mirrored into the obs
// metrics registry (`appeal_node_in_total` / `appeal_node_out_total` /
// `appeal_node_egress_total`, labeled {deployment=...,node=...}) so the
// loopback CI job can assert conservation on a live scrape — a stranded
// item shows up as a node whose books do not balance.
//
// Counters count REQUESTS, not batches: a node whose items are batches
// bumps the ledger by the number of member requests, so the ledger is
// comparable across nodes that batch and nodes that do not.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace appeal::serve::pipeline {

/// Point-in-time view of one node's conservation ledger.
struct node_stats {
  std::string name;
  std::uint64_t in = 0;      // requests that entered the node
  std::uint64_t out = 0;     // requests forwarded downstream
  std::uint64_t egress = 0;  // requests completed (promise fulfilled) here
};

class pipeline_node {
 public:
  /// `deployment` labels this node's registry instruments; empty =
  /// unlabeled (standalone engines and tests).
  pipeline_node(std::string name, const std::string& deployment);
  virtual ~pipeline_node() = default;

  pipeline_node(const pipeline_node&) = delete;
  pipeline_node& operator=(const pipeline_node&) = delete;

  /// Spawns the node's worker threads. Passive nodes (driven by upstream
  /// callers, e.g. ingress) make this a no-op.
  virtual void start() = 0;

  /// Closes the node's input edge: workers finish what is already queued
  /// and exit. Must be callable more than once.
  virtual void close_input() = 0;

  /// Joins the node's worker threads; called after close_input(), when
  /// the input has drained.
  virtual void join() = 0;

  const std::string& name() const { return name_; }

  std::uint64_t in_count() const {
    return in_.load(std::memory_order_relaxed);
  }
  std::uint64_t out_count() const {
    return out_.load(std::memory_order_relaxed);
  }
  std::uint64_t egress_count() const {
    return egress_.load(std::memory_order_relaxed);
  }

  node_stats stats() const {
    return {name_, in_count(), out_count(), egress_count()};
  }

 protected:
  // The ledger. Called from worker threads; both the local atomic (the
  // per-instance truth tests read) and the registry mirror are wait-free.
  void count_in(std::uint64_t n = 1) {
    in_.fetch_add(n, std::memory_order_relaxed);
    metric_in_.add(n);
  }
  void count_out(std::uint64_t n = 1) {
    out_.fetch_add(n, std::memory_order_relaxed);
    metric_out_.add(n);
  }
  void count_egress(std::uint64_t n = 1) {
    egress_.fetch_add(n, std::memory_order_relaxed);
    metric_egress_.add(n);
  }

 private:
  std::string name_;
  std::atomic<std::uint64_t> in_{0};
  std::atomic<std::uint64_t> out_{0};
  std::atomic<std::uint64_t> egress_{0};
  obs::counter& metric_in_;
  obs::counter& metric_out_;
  obs::counter& metric_egress_;
};

/// The assembled dataflow. Nodes are added in topological order
/// (ingress first, sinks last); the graph does not own them — the engine
/// declares the nodes as members (so declaration order handles
/// destruction) and registers them here for lifecycle + stats.
class pipeline_graph {
 public:
  /// Registers the next node in topological order.
  void add(pipeline_node& node) { nodes_.push_back(&node); }

  /// Starts every node, downstream first (reverse topological order), so
  /// consumers are live before producers can block on a full queue with
  /// nobody draining it.
  void start_all();

  /// Topological drain: close each node's input, join it, move on. When
  /// this returns every queue is empty and every thread joined.
  /// Idempotent.
  void drain_and_stop();

  std::vector<node_stats> stats() const;

  const std::vector<pipeline_node*>& nodes() const { return nodes_; }

 private:
  std::vector<pipeline_node*> nodes_;
  bool stopped_ = false;
};

}  // namespace appeal::serve::pipeline
