#include "serve/pipeline/stage_nodes.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace appeal::serve::pipeline {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

obs::gauge* depth_gauge(const std::string& deployment,
                        const std::string& node) {
  obs::label_set labels;
  if (!deployment.empty()) labels.emplace_back("deployment", deployment);
  labels.emplace_back("node", node);
  return &obs::default_registry().get_gauge(
      "appeal_node_queue_depth", std::move(labels),
      "instantaneous occupancy of this node's input queue");
}

}  // namespace

// ---------------------------------------------------------------- ingress

ingress_node::ingress_node(const std::string& deployment,
                           admission_controller& admission,
                           request_queue& queue, std::size_t shard_id,
                           complete_fn complete)
    : pipeline_node("ingress", deployment),
      admission_(admission),
      queue_(queue),
      shard_id_(shard_id),
      complete_(std::move(complete)) {}

admission_verdict ingress_node::submit(request&& r) {
  const admission_verdict verdict = admission_.try_admit(queue_, r);
  if (verdict == admission_verdict::closed) return verdict;
  count_in();
  switch (verdict) {
    case admission_verdict::admitted:
    case admission_verdict::degraded:
      count_out();
      break;
    case admission_verdict::shed: {
      response resp;
      resp.id = r.id;
      resp.status = request_status::shed;
      resp.shard = shard_id_;
      count_egress();
      complete_(std::move(r), std::move(resp));
      break;
    }
    case admission_verdict::closed:
      break;
  }
  return verdict;
}

// ----------------------------------------------------------- batch former

batch_former_node::batch_former_node(const std::string& deployment,
                                     request_queue& queue,
                                     const batch_policy& policy,
                                     node_queue<batch>& downstream)
    : pipeline_node("batch_former", deployment),
      queue_(queue),
      policy_(policy),
      downstream_(downstream) {}

void batch_former_node::start() {
  thread_ = std::thread([this] {
    batcher form(queue_, policy_);
    for (;;) {
      batch b = form.next_batch();
      if (b.empty()) return;  // request_queue closed and drained
      const std::uint64_t n = b.requests.size();
      count_in(n);
      if (!downstream_.push(std::move(b))) return;
      count_out(n);
    }
  });
}

void batch_former_node::join() {
  if (thread_.joinable()) thread_.join();
}

// ------------------------------------------------------------- edge infer

edge_infer_node::edge_infer_node(const std::string& deployment,
                                 std::vector<edge_backend*> backends,
                                 bool simulate_edge_compute, double edge_ms,
                                 double time_scale, std::size_t queue_depth,
                                 node_queue<scored_batch>& downstream)
    : pipeline_node("edge_infer", deployment),
      backends_(std::move(backends)),
      simulate_edge_compute_(simulate_edge_compute),
      edge_ms_(edge_ms),
      time_scale_(time_scale),
      input_(queue_depth, depth_gauge(deployment, "edge_infer")),
      downstream_(downstream) {
  APPEAL_CHECK(!backends_.empty(), "edge_infer_node needs backends");
  for (edge_backend* backend : backends_) {
    APPEAL_CHECK(backend != nullptr, "edge backend must not be null");
  }
}

void edge_infer_node::start() {
  threads_.reserve(backends_.size());
  for (edge_backend* backend : backends_) {
    threads_.emplace_back([this, backend] { worker(*backend); });
  }
}

void edge_infer_node::join() {
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void edge_infer_node::worker(edge_backend& backend) {
  for (;;) {
    batch b;
    if (input_.pop(b) == node_queue<batch>::pop_result::closed) return;
    count_in(b.requests.size());

    // Partition expired members out BEFORE inference (they get no
    // prediction) while keeping arrival order in the outgoing
    // scored_batch — the decide stage sees the same score order the
    // monolithic worker fed the controller.
    scored_batch sb;
    sb.items.resize(b.requests.size());
    std::vector<request> live;
    std::vector<std::size_t> live_slot;
    live.reserve(b.requests.size());
    live_slot.reserve(b.requests.size());
    const clock::time_point now = clock::now();
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      request& r = b.requests[i];
      if (r.deadline != request::no_deadline && now > r.deadline) {
        sb.items[i].req = std::move(r);
        sb.items[i].expired = true;
      } else {
        live_slot.push_back(i);
        live.push_back(std::move(r));
      }
    }

    if (!live.empty()) {
      const clock::time_point infer_start = clock::now();
      for (request& r : live) {
        if (r.trace != nullptr) {
          r.trace->set(obs::stage::queue_wait,
                       ms_between(r.enqueue_time, r.dequeue_time));
          r.trace->set(obs::stage::batch_form,
                       ms_between(r.dequeue_time, infer_start));
        }
      }

      const edge_inference inference = backend.infer(live);
      APPEAL_CHECK(inference.predictions.size() == live.size() &&
                       inference.scores.size() == live.size(),
                   "edge backend must return one result per request");

      if (simulate_edge_compute_) {
        const double scaled = edge_ms_ * time_scale_;
        if (scaled > 0.0) {
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(scaled));
        }
      }
      // The simulated accelerator pass (when on) is part of the edge
      // forward as far as attribution goes.
      const clock::time_point infer_end = clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        request& r = live[i];
        if (r.trace != nullptr) {
          r.trace->set(obs::stage::edge_infer,
                       ms_between(infer_start, infer_end));
        }
        scored_item& slot = sb.items[live_slot[i]];
        slot.req = std::move(r);
        slot.prediction = inference.predictions[i];
        slot.score = inference.scores[i];
      }
      sb.infer_end = infer_end;
    } else {
      sb.infer_end = now;
    }

    const std::uint64_t n = sb.items.size();
    if (!downstream_.push(std::move(sb))) return;
    count_out(n);
  }
}

// ---------------------------------------------------------- appeal decide

appeal_decide_node::appeal_decide_node(const std::string& deployment,
                                       threshold_controller& controller,
                                       std::size_t shard_id,
                                       std::size_t queue_depth,
                                       node_queue<appeal_item>& downstream,
                                       complete_fn complete)
    : pipeline_node("appeal_decide", deployment),
      controller_(controller),
      shard_id_(shard_id),
      input_(queue_depth, depth_gauge(deployment, "appeal_decide")),
      downstream_(downstream),
      complete_(std::move(complete)) {}

void appeal_decide_node::start() {
  thread_ = std::thread([this] { worker(); });
}

void appeal_decide_node::join() {
  if (thread_.joinable()) thread_.join();
}

void appeal_decide_node::worker() {
  for (;;) {
    scored_batch sb;
    if (input_.pop(sb) == node_queue<scored_batch>::pop_result::closed) {
      return;
    }
    count_in(sb.items.size());

    // One δ for the whole batch: the decision the paper's predictor head
    // makes per input, applied at batch granularity. Degraded-admission
    // requests bypass the decision entirely (they may never appeal) and
    // are excluded from the controller's observation — both the skip
    // count and the score denominator — so observed_sr stays the rate
    // over δ-decided traffic. Expired members are excluded from
    // everything (they were never scored).
    const double delta = controller_.delta();
    bool any_forced = false;
    bool any_live = false;
    std::vector<double> all_scores;
    std::vector<double> decided_scores;
    all_scores.reserve(sb.items.size());
    for (const scored_item& it : sb.items) {
      if (it.expired) continue;
      any_live = true;
      all_scores.push_back(it.score);
      if (it.req.force_edge) any_forced = true;
    }
    if (any_forced) {
      decided_scores.reserve(all_scores.size());
      for (const scored_item& it : sb.items) {
        if (!it.expired && !it.req.force_edge) {
          decided_scores.push_back(it.score);
        }
      }
    }

    std::size_t skipped = 0;
    for (scored_item& it : sb.items) {
      request& r = it.req;
      const double queue_ms = ms_between(r.enqueue_time, r.dequeue_time);
      if (it.expired) {
        response resp;
        resp.id = r.id;
        resp.status = request_status::expired;
        resp.shard = shard_id_;
        resp.queue_ms = queue_ms;
        if (r.trace != nullptr) {
          r.trace->set(obs::stage::queue_wait, resp.queue_ms);
        }
        count_egress();
        complete_(std::move(r), std::move(resp));
        continue;
      }
      if (r.trace != nullptr) {
        r.trace->set(obs::stage::decide,
                     ms_between(sb.infer_end, clock::now()));
      }
      if (r.force_edge || it.score >= delta) {
        response resp;
        resp.id = r.id;
        resp.predicted_class = it.prediction;
        resp.taken = r.force_edge ? route::edge_degraded : route::edge;
        resp.shard = shard_id_;
        resp.score = it.score;
        resp.delta = delta;
        resp.queue_ms = queue_ms;
        if (!r.force_edge) ++skipped;
        count_egress();
        complete_(std::move(r), std::move(resp));
      } else {
        appeal_item appeal;
        appeal.req = std::move(r);
        appeal.score = it.score;
        appeal.delta = delta;
        appeal.queue_ms = queue_ms;
        if (downstream_.push(std::move(appeal))) {
          count_out();
        } else {
          // The appeal queue closed under us — a lifecycle bug upstream
          // of this node, but the promise must still resolve: answer
          // honestly that the request ran out of road. (A refused push
          // leaves the item valid in our hands.)
          response resp;
          resp.id = appeal.req.id;
          resp.status = request_status::expired;
          resp.shard = shard_id_;
          resp.queue_ms = queue_ms;
          count_egress();
          complete_(std::move(appeal.req), std::move(resp));
        }
      }
    }
    if (any_live) {
      controller_.observe(any_forced ? decided_scores : all_scores, skipped);
    }
  }
}

// ----------------------------------------------------------- cloud appeal

cloud_appeal_node::cloud_appeal_node(const std::string& deployment,
                                     cloud_channel& channel,
                                     threshold_controller& controller,
                                     std::size_t shard_id,
                                     std::size_t queue_depth,
                                     complete_fn complete)
    : pipeline_node("cloud_appeal", deployment),
      channel_(channel),
      controller_(controller),
      shard_id_(shard_id),
      input_(queue_depth, depth_gauge(deployment, "cloud_appeal")),
      complete_(std::move(complete)) {}

void cloud_appeal_node::start() {
  thread_ = std::thread([this] { worker(); });
}

void cloud_appeal_node::join() {
  if (thread_.joinable()) thread_.join();
}

void cloud_appeal_node::worker() {
  for (;;) {
    appeal_item it;
    if (input_.pop(it) == node_queue<appeal_item>::pop_result::closed) return;
    count_in();
    const double score = it.score;
    const double delta = it.delta;
    const double queue_ms = it.queue_ms;
    channel_.appeal(
        std::move(it.req),
        [this, score, delta, queue_ms](request&& done,
                                       const appeal_outcome& outcome) {
          response resp;
          resp.id = done.id;
          resp.taken = route::cloud;
          resp.shard = shard_id_;
          resp.score = score;
          resp.delta = delta;
          resp.queue_ms = queue_ms;
          resp.link_ms = outcome.link_ms;
          resp.cloud_ms = outcome.cloud_ms;
          // Feed the measured offload round trip back into the
          // latency-SLO controller (no-op in the other modes): a
          // cloud_ms spike backs δ off toward edge-only and it recovers
          // when the link normalizes.
          controller_.observe_cloud_ms(outcome.link_ms);
          if (outcome.expired) {
            // The cloud shed the appeal (deadline blown in its work
            // queue): the client gets an honest `expired`, not a
            // fabricated prediction.
            resp.status = request_status::expired;
          } else {
            resp.predicted_class = outcome.prediction;
          }
          count_egress();
          complete_(std::move(done), std::move(resp));
        });
  }
}

}  // namespace appeal::serve::pipeline
