// The five concrete stages the serving engine is assembled from.
//
//   ingress_node       — passive front door: admission verdict at the
//                        request_queue boundary (block / shed / degrade);
//                        shed requests egress here.
//   batch_former_node  — one thread running the dynamic batcher over the
//                        request_queue, pushing formed batches downstream.
//   edge_infer_node    — the worker pool: one thread per edge backend,
//                        each popping whole batches, filtering expired
//                        members (no inference for them), running the
//                        two-head little-network forward, and forwarding
//                        a scored_batch.
//   appeal_decide_node — the AppealNet decision point: δ + deadline
//                        check. Edge-kept and expired requests egress
//                        here; low-confidence ones become appeal items.
//   cloud_appeal_node  — sink: hands appeals to the cloud_channel; the
//                        channel's completion callback is this node's
//                        egress.
//
// The work items between stages are typed (batch → scored_batch →
// appeal_item), so a future stage — the ROADMAP's split-computing appeal
// (forwarding intermediate activations instead of inputs) or a
// peer-appeal tier between edge and cloud — slots in by defining its
// item type and queue without touching the neighbours' internals.
//
// Trace-stage attribution is preserved across the queue hops: batch_form
// absorbs the formed batch's wait for an edge worker, decide absorbs the
// scored batch's wait for the decision thread, and the engine's final
// `complete` residual absorbs everything else — so trace_report's
// stage-sum reconciliation stays within the CI gate by construction.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "serve/admission.hpp"
#include "serve/backends.hpp"
#include "serve/batcher.hpp"
#include "serve/cloud_channel.hpp"
#include "serve/pipeline/node_queue.hpp"
#include "serve/pipeline/pipeline_node.hpp"
#include "serve/request.hpp"
#include "serve/request_queue.hpp"
#include "serve/threshold_controller.hpp"

namespace appeal::serve::pipeline {

/// Fulfills one request (the engine's complete(): trace finalization,
/// stats record, promise). Supplied by the engine to every node that has
/// an egress point.
using complete_fn = std::function<void(request&&, response&&)>;

/// One edge-scored request leaving the edge_infer stage. `expired`
/// members skipped inference (prediction/score are meaningless) and are
/// completed by the decide stage with request_status::expired.
struct scored_item {
  request req;
  std::size_t prediction = 0;
  double score = 0.0;
  bool expired = false;
};

/// A whole batch after the edge forward, in arrival order. `infer_end`
/// carries the edge stage boundary so the decide stage can stamp the
/// `decide` trace stage from the correct origin.
struct scored_batch {
  std::vector<scored_item> items;
  std::chrono::steady_clock::time_point infer_end;
};

/// One low-confidence request bound for the cloud, with the decision
/// context its eventual response must carry.
struct appeal_item {
  request req;
  double score = 0.0;
  double delta = 0.0;
  double queue_ms = 0.0;
};

/// Stage 1 — admission at the front door. Passive: no thread of its own,
/// submit() runs on the caller's (engine::submit) thread. Its "output
/// queue" is the engine's request_queue; closing the input closes that
/// queue, which ends the batch former.
class ingress_node final : public pipeline_node {
 public:
  ingress_node(const std::string& deployment, admission_controller& admission,
               request_queue& queue, std::size_t shard_id,
               complete_fn complete);

  /// Admits, degrades, sheds (completing the request here), or reports
  /// closed (request untouched, nothing counted — it never entered the
  /// graph).
  admission_verdict submit(request&& r);

  void start() override {}
  void close_input() override { queue_.close(); }
  void join() override {}

 private:
  admission_controller& admission_;
  request_queue& queue_;
  std::size_t shard_id_;
  complete_fn complete_;
};

/// Stage 2 — dynamic batch formation. One thread pulls from the
/// request_queue through a batcher and pushes formed batches downstream;
/// it exits when the request_queue is closed and drained. Backpressure:
/// a full downstream queue blocks this thread, the request_queue fills,
/// and admission starts shedding/degrading.
class batch_former_node final : public pipeline_node {
 public:
  batch_former_node(const std::string& deployment, request_queue& queue,
                    const batch_policy& policy, node_queue<batch>& downstream);

  void start() override;
  void close_input() override {}  // input is the request_queue; ingress owns it
  void join() override;

 private:
  request_queue& queue_;
  batch_policy policy_;
  node_queue<batch>& downstream_;
  std::thread thread_;
};

/// Stage 3 — the edge worker pool. One thread per backend (stateful
/// network backends stay single-threaded; each thread's nn workspace
/// arena stays private). Expired members are marked, not inferred.
class edge_infer_node final : public pipeline_node {
 public:
  edge_infer_node(const std::string& deployment,
                  std::vector<edge_backend*> backends,
                  bool simulate_edge_compute, double edge_ms,
                  double time_scale, std::size_t queue_depth,
                  node_queue<scored_batch>& downstream);

  node_queue<batch>& input() { return input_; }

  void start() override;
  void close_input() override { input_.close(); }
  void join() override;

 private:
  void worker(edge_backend& backend);

  std::vector<edge_backend*> backends_;
  bool simulate_edge_compute_;
  double edge_ms_;
  double time_scale_;
  node_queue<batch> input_;
  node_queue<scored_batch>& downstream_;
  std::vector<std::thread> threads_;
};

/// Stage 4 — the AppealNet decision: one δ read per scored batch,
/// deadline check first. Edge-kept (score >= δ, or degraded admission)
/// and expired requests complete here; the rest become appeal items.
/// Feeds the threshold controller exactly as the monolithic engine did:
/// degraded (force_edge) requests are excluded from both the skip count
/// and the score denominator, expired members from everything.
class appeal_decide_node final : public pipeline_node {
 public:
  appeal_decide_node(const std::string& deployment,
                     threshold_controller& controller, std::size_t shard_id,
                     std::size_t queue_depth,
                     node_queue<appeal_item>& downstream,
                     complete_fn complete);

  node_queue<scored_batch>& input() { return input_; }

  void start() override;
  void close_input() override { input_.close(); }
  void join() override;

 private:
  void worker();

  threshold_controller& controller_;
  std::size_t shard_id_;
  node_queue<scored_batch> input_;
  node_queue<appeal_item>& downstream_;
  complete_fn complete_;
  std::thread thread_;
};

/// Stage 5 — the cloud sink. One thread hands appeal items to the
/// cloud_channel (which coalesces, frames, and retries them); the
/// channel's completion callback — running on a transport receive thread
/// or the simulator thread — is this node's egress. out_count() stays 0:
/// nothing leaves this node except fulfilled promises.
class cloud_appeal_node final : public pipeline_node {
 public:
  cloud_appeal_node(const std::string& deployment, cloud_channel& channel,
                    threshold_controller& controller, std::size_t shard_id,
                    std::size_t queue_depth, complete_fn complete);

  node_queue<appeal_item>& input() { return input_; }

  void start() override;
  void close_input() override { input_.close(); }
  void join() override;

 private:
  void worker();

  cloud_channel& channel_;
  threshold_controller& controller_;
  std::size_t shard_id_;
  node_queue<appeal_item> input_;
  complete_fn complete_;
  std::thread thread_;
};

}  // namespace appeal::serve::pipeline
