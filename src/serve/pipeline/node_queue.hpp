// Bounded MPMC hand-off queue between two pipeline nodes.
//
// One node_queue<T> is the input edge of one pipeline_node: upstream
// threads push work items, the owning node's worker threads pop them.
// The capacity bound is the backpressure mechanism of the whole graph —
// a full queue blocks the producing node's thread, which stops popping
// ITS input, and the stall propagates upstream hop by hop until it
// reaches the admission controller at the front door (which sheds,
// degrades, or blocks the client according to policy). Nothing in the
// pipeline buffers unboundedly.
//
// close() follows the request_queue convention: pushes fail afterwards,
// pops drain the remaining items first and only then report closed — so
// a graph that closes its queues in topological order never strands an
// item (see pipeline_graph::drain_and_stop).
//
// The optional depth gauge mirrors the instantaneous occupancy into the
// obs metrics registry (`appeal_node_queue_depth{node=...}`), which is
// how a scrape pinpoints the stage a million-request load is actually
// queueing at.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace appeal::serve::pipeline {

template <typename T>
class node_queue {
 public:
  enum class pop_result { item, closed };
  enum class push_result { ok, full, closed };

  explicit node_queue(std::size_t capacity, obs::gauge* depth = nullptr)
      : capacity_(capacity), depth_(depth) {
    APPEAL_CHECK(capacity > 0, "node_queue capacity must be positive");
  }

  /// Blocks while the queue is full (backpressure); false when closed.
  bool push(T&& item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (depth_ != nullptr) depth_->set(static_cast<double>(items_.size()));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Never blocks; `full` leaves the item valid in the caller's hands.
  push_result try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return push_result::closed;
      if (items_.size() >= capacity_) return push_result::full;
      items_.push_back(std::move(item));
      if (depth_ != nullptr) depth_->set(static_cast<double>(items_.size()));
    }
    not_empty_.notify_one();
    return push_result::ok;
  }

  /// Blocks until an item arrives or the queue is closed AND drained.
  pop_result pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return pop_result::closed;
    out = std::move(items_.front());
    items_.pop_front();
    if (depth_ != nullptr) depth_->set(static_cast<double>(items_.size()));
    lock.unlock();
    not_full_.notify_one();
    return pop_result::item;
  }

  /// Closes the queue: future pushes fail, pops drain then report closed.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  obs::gauge* depth_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace appeal::serve::pipeline
