#include "serve/cloud_model.hpp"

#include <map>
#include <utility>
#include <vector>

#include "models/model_zoo.hpp"
#include "nn/fold.hpp"
#include "nn/serialize.hpp"
#include "serve/backends.hpp"
#include "util/rng.hpp"

namespace appeal::serve {

models::model_spec cloud_model_config::default_big_spec() {
  models::model_spec spec;
  spec.family = models::model_family::resnet;
  spec.depth = 2;
  spec.image_size = 16;
  spec.num_classes = 10;
  return spec;
}

std::unique_ptr<nn::sequential> make_cloud_model(
    const cloud_model_config& cfg) {
  util::rng gen(cfg.init_seed);
  std::unique_ptr<nn::sequential> net = models::make_classifier(cfg.spec, gen);
  if (!cfg.weights_path.empty()) {
    nn::load_model(*net, cfg.weights_path);
  }
  if (cfg.fold) {
    nn::fold_conv_batchnorm(*net);
  }
  return net;
}

std::vector<split_cut_spec> enumerate_cloud_cuts(
    const cloud_model_config& cfg) {
  // Build the model exactly as both link ends serve it (fold included) so
  // the cut boundaries here are the boundaries prefix_feature and
  // infer_batch_suffix will run.
  const std::unique_ptr<nn::sequential> net = make_cloud_model(cfg);
  // Layers shape-propagate in NCHW; walk a batch of one and strip the
  // leading batch axis from the per-sample feature dims.
  const shape input(
      {1, cfg.spec.in_channels, cfg.spec.image_size, cfg.spec.image_size});
  const std::vector<nn::cut_info> table = net->cut_table(input);
  std::vector<split_cut_spec> cuts;
  cuts.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    split_cut_spec spec;
    spec.id = static_cast<std::uint32_t>(i + 1);  // 0 = raw input
    spec.name = table[i].name;
    const std::vector<std::size_t>& dims = table[i].output.dims();
    spec.feature_dims.assign(dims.begin() + 1, dims.end());
    spec.wire_bytes = table[i].feature_bytes;
    spec.prefix_flops = table[i].prefix_flops;
    spec.suffix_flops = table[i].suffix_flops;
    cuts.push_back(std::move(spec));
  }
  return cuts;
}

stub_server::scorer_factory make_network_scorer_factory(
    const cloud_model_config& cfg) {
  return [cfg](std::size_t) -> stub_server::batch_scorer_fn {
    // One model per worker (never shared across threads), owned by its
    // backend; forwards draw from the calling worker's thread-local
    // inference workspace.
    auto backend =
        std::make_shared<network_cloud_backend>(make_cloud_model(cfg));
    // Expected per-sample feature shape per cut id (1-based), for
    // validating split appeals before the stacked suffix forward. The
    // table walks NCHW with a batch of one; the wire tensors are
    // per-sample, so drop the leading batch axis.
    const shape single_input(
        {1, cfg.spec.in_channels, cfg.spec.image_size, cfg.spec.image_size});
    auto cut_shapes = std::make_shared<std::vector<std::vector<std::size_t>>>();
    for (const nn::cut_info& c : backend->network().cut_table(single_input)) {
      const std::vector<std::size_t>& dims = c.output.dims();
      cut_shapes->push_back({dims.begin() + 1, dims.end()});
    }
    const std::size_t classes = cfg.spec.num_classes;
    return [backend, cut_shapes,
            classes](const std::vector<const wire::appeal_record*>& batch) {
      std::vector<std::size_t> out(batch.size(), 0);
      // One stacked forward per (split cut, tensor shape): appeals from
      // one deployment share both; a stub serving several deployments —
      // or one mid-switch between cuts — still batches within each group.
      // Cut 0 groups are raw inputs (full forward); cut > 0 groups are
      // feature maps (suffix-only forward).
      std::map<std::pair<std::uint32_t, std::vector<std::size_t>>,
               std::vector<std::size_t>>
          groups;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const wire::appeal_record& a = *batch[i];
        if (a.input.empty()) {
          // No pixels on the wire (replay workloads): the argmax-scorer
          // convention keeps the stub usable under them.
          out[i] =
              classes == 0 ? 0 : static_cast<std::size_t>(a.key % classes);
        } else if (a.split_cut != 0 &&
                   (a.split_cut > cut_shapes->size() ||
                    a.input.dims().dims() != (*cut_shapes)[a.split_cut - 1])) {
          // Unknown cut, or a feature shape that is not that cut's output
          // — this model cannot score the appeal as sent, and no retry
          // can fix it. Reject so the edge answers locally and stops
          // shipping the cut.
          out[i] = kRejectedPrediction;
        } else {
          groups[{a.split_cut, a.input.dims().dims()}].push_back(i);
        }
      }
      for (const auto& [key, indices] : groups) {
        std::vector<const tensor*> inputs;
        inputs.reserve(indices.size());
        for (const std::size_t i : indices) {
          inputs.push_back(&batch[i]->input);
        }
        const std::vector<std::size_t> predictions =
            key.first == 0 ? backend->infer_batch(inputs)
                           : backend->infer_batch_suffix(inputs, key.first);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          out[indices[j]] = predictions[j];
        }
      }
      return out;
    };
  };
}

}  // namespace appeal::serve
