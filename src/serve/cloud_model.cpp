#include "serve/cloud_model.hpp"

#include <map>
#include <utility>
#include <vector>

#include "models/model_zoo.hpp"
#include "nn/fold.hpp"
#include "nn/serialize.hpp"
#include "serve/backends.hpp"
#include "util/rng.hpp"

namespace appeal::serve {

models::model_spec cloud_model_config::default_big_spec() {
  models::model_spec spec;
  spec.family = models::model_family::resnet;
  spec.depth = 2;
  spec.image_size = 16;
  spec.num_classes = 10;
  return spec;
}

std::unique_ptr<nn::sequential> make_cloud_model(
    const cloud_model_config& cfg) {
  util::rng gen(cfg.init_seed);
  std::unique_ptr<nn::sequential> net = models::make_classifier(cfg.spec, gen);
  if (!cfg.weights_path.empty()) {
    nn::load_model(*net, cfg.weights_path);
  }
  if (cfg.fold) {
    nn::fold_conv_batchnorm(*net);
  }
  return net;
}

stub_server::scorer_factory make_network_scorer_factory(
    const cloud_model_config& cfg) {
  return [cfg](std::size_t) -> stub_server::batch_scorer_fn {
    // One model per worker (never shared across threads), owned by its
    // backend; forwards draw from the calling worker's thread-local
    // inference workspace.
    auto backend =
        std::make_shared<network_cloud_backend>(make_cloud_model(cfg));
    const std::size_t classes = cfg.spec.num_classes;
    return [backend,
            classes](const std::vector<const wire::appeal_record*>& batch) {
      std::vector<std::size_t> out(batch.size(), 0);
      // One stacked forward per input shape (appeals from one deployment
      // share a shape; a stub serving several deployments still batches
      // within each).
      std::map<std::vector<std::size_t>, std::vector<std::size_t>> groups;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i]->input.empty()) {
          // No pixels on the wire (replay workloads): the argmax-scorer
          // convention keeps the stub usable under them.
          out[i] = classes == 0
                       ? 0
                       : static_cast<std::size_t>(batch[i]->key % classes);
        } else {
          groups[batch[i]->input.dims().dims()].push_back(i);
        }
      }
      for (const auto& [dims, indices] : groups) {
        std::vector<const tensor*> inputs;
        inputs.reserve(indices.size());
        for (const std::size_t i : indices) {
          inputs.push_back(&batch[i]->input);
        }
        const std::vector<std::size_t> predictions =
            backend->infer_batch(inputs);
        for (std::size_t j = 0; j < indices.size(); ++j) {
          out[indices[j]] = predictions[j];
        }
      }
      return out;
    };
  };
}

}  // namespace appeal::serve
