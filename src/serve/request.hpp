// In-flight request/response types of the online serving engine.
//
// A request enters through server::submit() (or engine::submit() when the
// engine is used standalone), passes admission control at the queue
// boundary, waits in the request_queue, is pulled into a dynamic batch by
// an edge worker, and completes on the edge (score >= δ, or degraded
// admission), through the cloud_channel after a simulated appeal, or
// immediately with a non-ok status (shed admission, expired deadline).
// The embedded promise is fulfilled exactly once, at completion.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "tensor/tensor.hpp"

namespace appeal::serve {

/// Where a completed request was answered. `edge_degraded` means the
/// admission controller forced an edge answer (no cloud appeal allowed)
/// because the queue was saturated.
enum class route { edge, cloud, edge_degraded };

/// How a request left the system. Only `ok` responses carry a meaningful
/// prediction; `shed` was refused at admission, `expired` missed its
/// deadline — either before reaching an edge worker (route::edge) or,
/// after an appeal, before a cloud scorer reached it (route::cloud; the
/// cloud shed it and answered `expired` on the wire).
enum class request_status { ok, shed, expired };

/// SLO class of a request. Interactive traffic gets the full queue
/// capacity and pops ahead of batch traffic; batch traffic is admitted
/// only below the admission controller's batch headroom.
enum class priority_class { interactive, batch };

/// Final answer handed back to the client.
struct response {
  std::uint64_t id = 0;
  std::size_t predicted_class = 0;
  request_status status = request_status::ok;
  route taken = route::edge;
  std::size_t shard = 0;   // engine shard that served the request
  double score = 0.0;      // edge confidence score (higher = easier)
  double delta = 0.0;      // threshold in force at decision time
  double queue_ms = 0.0;   // enqueue -> pulled into a batch
  double link_ms = 0.0;    // uplink + cloud time (0 on the edge)
  /// Cloud-reported work-queue wait + scoring time for appealed requests
  /// over a socket transport (0 on the edge and under the simulator) —
  /// the honest number to hold against the cost model's cloud term.
  double cloud_ms = 0.0;
  double latency_ms = 0.0; // enqueue -> completion, wall clock
};

/// Client-facing submission: what `server::submit` accepts. `model` names
/// a registered deployment; `deadline` (zero = none) is relative to the
/// submit call and expires the request if no edge worker reaches it in
/// time.
struct inference_request {
  std::string model;
  tensor input;                  // [C, H, W]; may be empty for replay backends
  std::uint64_t key = 0;         // routing/affinity key; replay sample id
  std::size_t label = std::numeric_limits<std::size_t>::max();
  priority_class priority = priority_class::interactive;
  std::chrono::nanoseconds deadline{0};  // 0 = no deadline
};

/// One in-flight inference request (move-only: it carries its promise).
struct request {
  /// Sentinel for "ground truth unknown" — such requests are excluded
  /// from the online-accuracy statistic.
  static constexpr std::size_t no_label = std::numeric_limits<std::size_t>::max();
  /// Sentinel for "no deadline".
  static constexpr std::chrono::steady_clock::time_point no_deadline =
      std::chrono::steady_clock::time_point::max();

  std::uint64_t id = 0;
  tensor input;                  // [C, H, W]; may be empty for replay backends
  std::uint64_t key = 0;         // sample id used by replay backends
  std::size_t label = no_label;  // ground truth when known (stats only)
  priority_class priority = priority_class::interactive;
  bool force_edge = false;       // degraded admission: never appeal
  std::chrono::steady_clock::time_point deadline = no_deadline;
  std::chrono::steady_clock::time_point enqueue_time;
  std::chrono::steady_clock::time_point dequeue_time;
  std::promise<response> promise;
  /// Sampled trace span riding the request (null for the unsampled
  /// majority). Stages are stamped at each boundary; the engine
  /// finalizes and hands it to the trace collector at completion.
  std::unique_ptr<obs::trace_span> trace;

  // --- split-computing appeal state (set by the cloud_channel) ---
  /// When > 0, `feature` holds the cloud model's prefix activation at
  /// that cut and the wire ships it instead of `input`; `input` stays
  /// populated for the fallback/retry paths (which recompute in full).
  std::uint32_t split_cut = 0;
  tensor feature;
};

}  // namespace appeal::serve
