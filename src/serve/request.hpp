// In-flight request/response types of the online serving engine.
//
// A request enters through engine::submit(), waits in the request_queue,
// is pulled into a dynamic batch by an edge_worker, and completes either
// on the edge (score >= δ) or through the cloud_channel after a simulated
// appeal. The embedded promise is fulfilled exactly once, at completion.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <limits>

#include "tensor/tensor.hpp"

namespace appeal::serve {

/// Where a completed request was answered.
enum class route { edge, cloud };

/// Final answer handed back to the client.
struct response {
  std::uint64_t id = 0;
  std::size_t predicted_class = 0;
  route taken = route::edge;
  double score = 0.0;      // edge confidence score (higher = easier)
  double delta = 0.0;      // threshold in force at decision time
  double queue_ms = 0.0;   // enqueue -> pulled into a batch
  double link_ms = 0.0;    // simulated uplink + cloud time (0 on the edge)
  double latency_ms = 0.0; // enqueue -> completion, wall clock
};

/// One in-flight inference request (move-only: it carries its promise).
struct request {
  /// Sentinel for "ground truth unknown" — such requests are excluded
  /// from the online-accuracy statistic.
  static constexpr std::size_t no_label = std::numeric_limits<std::size_t>::max();

  std::uint64_t id = 0;
  tensor input;                  // [C, H, W]; may be empty for replay backends
  std::uint64_t key = 0;         // sample id used by replay backends
  std::size_t label = no_label;  // ground truth when known (stats only)
  std::chrono::steady_clock::time_point enqueue_time;
  std::chrono::steady_clock::time_point dequeue_time;
  std::promise<response> promise;
};

}  // namespace appeal::serve
