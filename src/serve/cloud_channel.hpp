// Asynchronous appeal dispatcher with batched coalescing over a
// pluggable edge→cloud transport.
//
// The channel owns one uplink per deployment. Appeals queue on a
// coalescing thread that packs them into framed batches — everything
// that arrived while the link was busy goes out together, and an
// optional coalesce window holds the first appeal back briefly to let a
// burst accumulate — then ships each batch over a cloud_transport:
//   - sim (default): the deterministic cost-model simulator; the local
//     cloud_backend scores, modeled transmit/RTT delays apply
//     (time_scale = 0 disables them for fast tests);
//   - uds / tcp: the wire.hpp protocol to a real listening process
//     (tools/cloud_stub), kernel backpressure replacing modeled
//     occupancy.
// Completions come back demuxed by a channel-assigned wire id (request
// ids are only unique per engine shard; one channel serves all shards of
// a deployment).
//
// Failure handling is a three-state circuit breaker, not a one-way
// fallback:
//   - an `overloaded` answer (wire v4 backpressure) is retried after a
//     jittered exponential backoff that honors the cloud's retry-after
//     hint, up to link_config::max_retries; exhausted (or deadline-dead)
//     retries complete from the local fallback backend;
//   - breaker_threshold consecutive overloads open the breaker softly
//     (link stays up); a send error, reader EOF, or the response
//     watchdog opens it hard and retires the transport;
//   - while open, every appeal completes locally; after breaker_open_ms
//     the channel goes half-open, reconnecting if the transport died,
//     and sends a single probe appeal — a wire completion re-closes the
//     breaker, another failure re-opens it.
// Serving therefore degrades under overload and RECOVERS when the cloud
// comes back, instead of staying edge-only for the rest of the run.
//
// Split-computing appeals (link_config::split): instead of re-uploading
// the raw input, the channel can run the canonical cloud model's PREFIX
// on the edge (its fallback backend is a bit-identical copy built from
// the shared serve/cloud_model spec) and ship the intermediate feature
// map at a named cut; the cloud scores only the suffix. Prefix + suffix
// is forward_range over the same folded weights, so the answers are
// bit-identical to full recompute while the wire carries fewer bytes.
// `fixed` mode pins the cut; `auto` picks per batch from the paper's
// cost model extended with the measured link bandwidth (EMA of encoded
// bytes per send-occupancy ms) and the cloud's reported queue wait. A
// `rejected` answer (wire v5: the peer's model lacks the cut) completes
// locally and blacklists that cut for the rest of the run.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collab/cost_model.hpp"
#include "obs/metrics.hpp"
#include "serve/backends.hpp"
#include "serve/request.hpp"
#include "serve/serve_stats.hpp"
#include "serve/transport/cloud_transport.hpp"
#include "util/rng.hpp"

namespace appeal::serve {

/// Circuit-breaker state of the cloud link. Numeric values are what the
/// appeal_breaker_state gauge and the stats snapshot export.
enum class breaker_state : std::uint8_t { closed = 0, open = 1, half_open = 2 };

const char* breaker_state_name(breaker_state s);

/// Link-level statistics the serving stats report alongside the
/// per-request counters.
struct link_counters {
  transport_counters wire;        // batches, appeals, bytes on the wire
  std::size_t completed = 0;      // appeals answered (any path)
  std::size_t local_fallbacks = 0;  // answered locally (link down/overloaded)
  std::size_t retries = 0;        // overloaded appeals re-sent after backoff
  std::size_t overloaded = 0;     // overloaded answers received
  std::size_t breaker_opens = 0;  // breaker closed -> open transitions
  std::size_t split_appeals = 0;  // appeals shipped as feature maps
  std::size_t split_bytes_saved = 0;  // uplink bytes saved vs raw input
  std::size_t split_rejected = 0;     // split appeals the cloud rejected
  /// Breaker state at capture time (a state, not a counter: since()
  /// keeps the current value rather than differencing it).
  std::uint8_t breaker = 0;
  /// Active split cut at capture time (a state like `breaker`).
  std::uint32_t split_cut = 0;

  /// Counters accumulated since `baseline` was captured (how
  /// engine/deployment::reset_stats keeps the wire statistics aligned
  /// with the post-warmup measurement window).
  link_counters since(const link_counters& baseline) const {
    link_counters d = *this;
    d.wire.batches_sent -= baseline.wire.batches_sent;
    d.wire.appeals_sent -= baseline.wire.appeals_sent;
    d.wire.bytes_sent -= baseline.wire.bytes_sent;
    d.wire.bytes_received -= baseline.wire.bytes_received;
    d.completed -= baseline.completed;
    d.local_fallbacks -= baseline.local_fallbacks;
    d.retries -= baseline.retries;
    d.overloaded -= baseline.overloaded;
    d.breaker_opens -= baseline.breaker_opens;
    d.split_appeals -= baseline.split_appeals;
    d.split_bytes_saved -= baseline.split_bytes_saved;
    d.split_rejected -= baseline.split_rejected;
    return d;
  }
};

/// Overlays the channel's wire counters onto a stats snapshot (called by
/// engine::snapshot / deployment::snapshot).
inline void apply_link_counters(stats_snapshot& s, const link_counters& c) {
  s.appeal_batches = c.wire.batches_sent;
  s.appeals_on_wire = c.wire.appeals_sent;
  s.mean_appeals_per_batch = c.wire.mean_appeals_per_batch();
  s.wire_bytes_tx = c.wire.bytes_sent;
  s.wire_bytes_rx = c.wire.bytes_received;
  s.link_fallbacks = c.local_fallbacks;
  s.appeal_retries = c.retries;
  s.appeal_overloaded = c.overloaded;
  s.breaker_opens = c.breaker_opens;
  s.breaker_state = c.breaker;
  s.split_appeals = c.split_appeals;
  s.split_bytes_saved = c.split_bytes_saved;
  s.split_rejected = c.split_rejected;
  s.split_cut = c.split_cut;
}

/// What came back for one appeal. `expired` means the cloud shed the
/// appeal because its deadline was blown before a scorer reached it —
/// `prediction` is meaningless and the caller should surface
/// request_status::expired instead of a made-up answer. (Overloaded
/// answers never reach callers: the channel resolves them internally by
/// retrying or falling back to the local backend.)
struct appeal_outcome {
  std::size_t prediction = 0;
  double link_ms = 0.0;   // batched -> completed, client clock
  double cloud_ms = 0.0;  // cloud-reported queue wait + scoring time
  /// The cloud_ms total split into queue wait and batched scoring (wire
  /// v3 peers only; 0 otherwise). Feeds the trace spans' cloud stages.
  double cloud_queue_ms = 0.0;
  double cloud_score_ms = 0.0;
  bool expired = false;
};

class cloud_channel {
 public:
  /// Called when an appeal completes (transport receive thread or the
  /// coalescing thread on the fallback path).
  using completion_fn = std::function<void(request&&, const appeal_outcome&)>;

  /// `backend` is the local big model: the simulator's scorer, and the
  /// fallback when a socket transport loses its peer. `name` rides the
  /// wire as the deployment name. The cost model is kept by value: the
  /// breaker's half-open reconnect builds a fresh transport from it.
  cloud_channel(cloud_backend& backend, const collab::cost_model& link,
                const link_config& cfg, std::string name = "");
  ~cloud_channel();

  /// Enqueues an appeal; returns immediately. The completion callback
  /// fires once the cloud's answer is back (simulated, real, retried, or
  /// the local fallback).
  void appeal(request&& r, completion_fn on_complete);

  /// Blocks until every appeal enqueued so far has completed (including
  /// parked retries).
  void drain();

  /// Total appeals completed.
  std::size_t completed() const;

  /// Wire + completion counters for stats reporting.
  link_counters counters() const;

  /// Current breaker state (lock-free; admission and stats poll it).
  breaker_state breaker() const {
    return static_cast<breaker_state>(
        breaker_atomic_.load(std::memory_order_relaxed));
  }

  /// True while the link is overloaded or the breaker is not closed —
  /// the admission controller tightens its degrade thresholds on this.
  bool under_pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  const link_config& config() const { return config_; }

 private:
  struct pending {
    request req;
    completion_fn on_complete;
    std::chrono::steady_clock::time_point arrived;
    std::size_t attempts = 0;  // completed wire attempts (retries only)
  };
  struct in_flight {
    request req;
    completion_fn on_complete;
    std::chrono::steady_clock::time_point batched_at;
    /// Time send_batch spent shipping this entry's frame (stamped after
    /// the send returns; 0 if the completion raced the send back).
    double tx_ms = 0.0;
    std::size_t attempts = 0;
  };

  void run();
  void on_completions(std::uint64_t epoch,
                      std::vector<cloud_transport::completion>&& batch);
  void on_link_failure(std::uint64_t epoch);
  /// Scores `entries` with the local backend and completes them.
  void complete_locally(std::vector<in_flight>&& entries);
  void finish(in_flight&& entry, appeal_outcome outcome);
  /// Extracts the given wire ids from in_flight_ (those still present).
  /// Caller holds mutex_.
  std::vector<in_flight> extract_locked(const std::vector<std::uint64_t>& ids);
  /// True when the response watchdog applies to this channel's link.
  bool watchdog_enabled() const;
  /// When the oldest in-flight appeal is due for the response watchdog,
  /// its deadline; std::nullopt when the watchdog does not apply.
  /// Caller holds mutex_.
  std::optional<std::chrono::steady_clock::time_point> watchdog_due_locked();
  /// Hard-trips the breaker and completes every overdue appeal locally
  /// when the watchdog deadline has passed. Caller holds `lock`; it is
  /// released and re-taken around the local completions.
  void reap_overdue(std::unique_lock<std::mutex>& lock);
  /// Opens the breaker. `retire` also takes the transport out of service
  /// (hard failure: the link itself died); without it the link stays up
  /// (soft overload trip). Caller holds mutex_.
  void open_breaker_locked(bool retire, const char* why);
  void set_breaker_locked(breaker_state s);
  /// pressure_ = breaker open/half-open or an overload streak in
  /// progress. Caller holds mutex_.
  void update_pressure_locked();
  /// Moves retries whose backoff elapsed into pending_. Caller holds
  /// mutex_.
  void promote_due_retries_locked();
  /// Earliest of: watchdog deadline, next retry due, breaker cool-off
  /// end. Caller holds mutex_.
  std::optional<std::chrono::steady_clock::time_point> next_event_locked();
  /// Stops and frees transports retired by hard trips (run thread only;
  /// a transport cannot stop() itself from its own reader thread, so
  /// failure paths park it here instead).
  void dispose_retired(std::unique_lock<std::mutex>& lock);
  /// open -> half_open: reconnects if the transport was retired, or just
  /// re-arms the probe when it survived a soft trip. Re-opens on a
  /// failed reconnect. Caller holds `lock` (released around the connect).
  void to_half_open(std::unique_lock<std::mutex>& lock);
  /// Backoff for attempt `attempts` (0-based), jittered, never below the
  /// cloud's retry-after hint. Caller holds mutex_ (jitter_rng_).
  double backoff_delay_ms(std::size_t attempts, double hint);
  /// Split cut for the next batch: 0 (raw input) when split is off or
  /// unsupported; the configured cut in fixed mode; in auto mode the
  /// candidate minimizing uplink(bytes @ measured-bandwidth EMA) + cloud
  /// suffix compute + cloud-wait EMA. Edge prefix compute is NOT charged
  /// — a cut reuses backbone compute the edge already paid for. Caller
  /// holds mutex_.
  std::uint32_t choose_cut_locked();
  /// Marks a cut the cloud answered `rejected` so it is never shipped
  /// again (no retry can fix a cut the peer's model lacks). Caller holds
  /// mutex_.
  void reject_cut_locked(std::uint32_t cut);

  cloud_backend& backend_;
  link_config config_;
  collab::cost_model link_;  // for rebuilding the transport on reconnect
  std::string name_;
  /// Null while the breaker is hard-open (transport retired, not yet
  /// reconnected). Mutated under mutex_ only.
  std::unique_ptr<cloud_transport> transport_;
  /// Transports taken out of service by hard failures, awaiting disposal
  /// on the run thread.
  std::vector<std::unique_ptr<cloud_transport>> retired_;
  /// Bumped whenever the active transport is retired or replaced;
  /// completion/failure callbacks carry the epoch they were registered
  /// under and are ignored when stale.
  std::uint64_t epoch_ = 0;
  /// Wire counters accumulated from retired transports, so counters()
  /// spans reconnections.
  transport_counters wire_base_;

  /// Serializes local fallback scoring: the coalescing thread and the
  /// transport reader may both complete entries locally while the link
  /// dies, and backend_.infer (a network forward) is not thread-safe.
  std::mutex fallback_mutex_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;     // coalescing thread wake-ups
  std::condition_variable drained_;  // drain() waiters
  std::deque<pending> pending_;
  /// Overloaded appeals parked until their backoff elapses, keyed by due
  /// time (multimap: coinciding due times are legal).
  std::multimap<std::chrono::steady_clock::time_point, pending> retry_queue_;
  std::unordered_map<std::uint64_t, in_flight> in_flight_;
  /// Wire ids of the batch the coalescing thread is sending right now:
  /// failure paths must not extract (and destroy) entries the send path
  /// still reads through raw pointers; the sender sweeps them itself
  /// after the send returns.
  std::vector<std::uint64_t> sending_ids_;
  /// (wire id, batched_at) in send order, for the response watchdog;
  /// lazily pruned of already-completed ids.
  std::deque<std::pair<std::uint64_t, std::chrono::steady_clock::time_point>>
      flight_order_;
  util::rng jitter_rng_;  // retry backoff jitter (guarded by mutex_)
  std::uint64_t next_wire_id_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t completed_ = 0;
  std::size_t local_fallbacks_ = 0;
  std::size_t retries_ = 0;
  std::size_t overloaded_ = 0;
  std::size_t breaker_opens_ = 0;
  std::size_t overload_streak_ = 0;  // consecutive overloaded answers
  // --- split computing (config_.split; guarded by mutex_) ---
  /// Cleared the first time backend_.prefix_feature returns empty (a
  /// replay/oracle backend has no layers to partition); every later
  /// appeal ships the raw input without re-trying.
  bool split_supported_ = true;
  std::uint32_t active_cut_ = 0;  // 0 = raw input
  std::vector<bool> cut_rejected_;  // indexed by cut id - 1
  /// Measured uplink bandwidth: EMA of encoded bytes / send_batch wall
  /// time, fed on every successful send. 0 until the first measurement
  /// (the cost model's comm_ms_per_kb stands in).
  double bw_ema_bytes_per_ms_ = 0.0;
  /// EMA of the cloud's reported work-queue wait (cloud_queue_ms on ok
  /// answers, retry-after hints on overloads).
  double cloud_wait_ema_ms_ = 0.0;
  std::size_t split_appeals_ = 0;
  std::size_t split_bytes_saved_ = 0;
  std::size_t split_rejected_ = 0;
  breaker_state breaker_ = breaker_state::closed;
  std::chrono::steady_clock::time_point open_until_{};
  /// Half-open sends exactly one appeal at a time; set while that probe
  /// is on the wire.
  bool probe_in_flight_ = false;
  /// When the live link last delivered a completion batch. The response
  /// watchdog uses it to tell a lost frame (peer still answering others
  /// — complete just the overdue appeals locally, keep the link) from a
  /// dead link (silent for the whole budget — retire it). Default (the
  /// clock epoch) reads as "never answered".
  std::chrono::steady_clock::time_point last_rx_{};
  std::atomic<std::uint8_t> breaker_atomic_{0};
  std::atomic<bool> pressure_{false};
  bool stopping_ = false;
  obs::counter& metric_retries_;
  obs::counter& metric_overloaded_;
  obs::gauge& metric_breaker_;
  obs::gauge& metric_split_cut_;
  obs::counter& metric_split_bytes_saved_;
  std::thread worker_;
};

}  // namespace appeal::serve
