// Asynchronous appeal dispatcher with batched coalescing over a
// pluggable edge→cloud transport.
//
// The channel owns one uplink per deployment. Appeals queue on a
// coalescing thread that packs them into framed batches — everything
// that arrived while the link was busy goes out together, and an
// optional coalesce window holds the first appeal back briefly to let a
// burst accumulate — then ships each batch over a cloud_transport:
//   - sim (default): the deterministic cost-model simulator; the local
//     cloud_backend scores, modeled transmit/RTT delays apply
//     (time_scale = 0 disables them for fast tests);
//   - uds / tcp: the wire.hpp protocol to a real listening process
//     (tools/cloud_stub), kernel backpressure replacing modeled
//     occupancy.
// Completions come back demuxed by a channel-assigned wire id (request
// ids are only unique per engine shard; one channel serves all shards of
// a deployment). If the link dies mid-run the channel completes every
// outstanding — and every future — appeal with the local cloud backend,
// so serving degrades instead of wedging.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collab/cost_model.hpp"
#include "serve/backends.hpp"
#include "serve/request.hpp"
#include "serve/serve_stats.hpp"
#include "serve/transport/cloud_transport.hpp"

namespace appeal::serve {

/// Link-level statistics the serving stats report alongside the
/// per-request counters.
struct link_counters {
  transport_counters wire;        // batches, appeals, bytes on the wire
  std::size_t completed = 0;      // appeals answered (any path)
  std::size_t local_fallbacks = 0;  // answered locally after a link failure

  /// Counters accumulated since `baseline` was captured (how
  /// engine/deployment::reset_stats keeps the wire statistics aligned
  /// with the post-warmup measurement window).
  link_counters since(const link_counters& baseline) const {
    link_counters d = *this;
    d.wire.batches_sent -= baseline.wire.batches_sent;
    d.wire.appeals_sent -= baseline.wire.appeals_sent;
    d.wire.bytes_sent -= baseline.wire.bytes_sent;
    d.wire.bytes_received -= baseline.wire.bytes_received;
    d.completed -= baseline.completed;
    d.local_fallbacks -= baseline.local_fallbacks;
    return d;
  }
};

/// Overlays the channel's wire counters onto a stats snapshot (called by
/// engine::snapshot / deployment::snapshot).
inline void apply_link_counters(stats_snapshot& s, const link_counters& c) {
  s.appeal_batches = c.wire.batches_sent;
  s.appeals_on_wire = c.wire.appeals_sent;
  s.mean_appeals_per_batch = c.wire.mean_appeals_per_batch();
  s.wire_bytes_tx = c.wire.bytes_sent;
  s.wire_bytes_rx = c.wire.bytes_received;
  s.link_fallbacks = c.local_fallbacks;
}

/// What came back for one appeal. `expired` means the cloud shed the
/// appeal because its deadline was blown before a scorer reached it —
/// `prediction` is meaningless and the caller should surface
/// request_status::expired instead of a made-up answer.
struct appeal_outcome {
  std::size_t prediction = 0;
  double link_ms = 0.0;   // batched -> completed, client clock
  double cloud_ms = 0.0;  // cloud-reported queue wait + scoring time
  /// The cloud_ms total split into queue wait and batched scoring (wire
  /// v3 peers only; 0 otherwise). Feeds the trace spans' cloud stages.
  double cloud_queue_ms = 0.0;
  double cloud_score_ms = 0.0;
  bool expired = false;
};

class cloud_channel {
 public:
  /// Called when an appeal completes (transport receive thread or the
  /// coalescing thread on the fallback path).
  using completion_fn = std::function<void(request&&, const appeal_outcome&)>;

  /// `backend` is the local big model: the simulator's scorer, and the
  /// fallback when a socket transport loses its peer. `name` rides the
  /// wire as the deployment name.
  cloud_channel(cloud_backend& backend, const collab::cost_model& link,
                const link_config& cfg, std::string name = "");
  ~cloud_channel();

  /// Enqueues an appeal; returns immediately. The completion callback
  /// fires once the cloud's answer is back (simulated or real).
  void appeal(request&& r, completion_fn on_complete);

  /// Blocks until every appeal enqueued so far has completed.
  void drain();

  /// Total appeals completed.
  std::size_t completed() const;

  /// Wire + completion counters for stats reporting.
  link_counters counters() const;

  const link_config& config() const { return config_; }

 private:
  struct pending {
    request req;
    completion_fn on_complete;
    std::chrono::steady_clock::time_point arrived;
  };
  struct in_flight {
    request req;
    completion_fn on_complete;
    std::chrono::steady_clock::time_point batched_at;
    /// Time send_batch spent shipping this entry's frame (stamped after
    /// the send returns; 0 if the completion raced the send back).
    double tx_ms = 0.0;
  };

  void run();
  void on_completions(std::vector<cloud_transport::completion>&& batch);
  void on_link_failure();
  /// Scores `entries` with the local backend and completes them.
  void complete_locally(std::vector<in_flight>&& entries);
  void finish(in_flight&& entry, appeal_outcome outcome);
  /// Extracts the given wire ids from in_flight_ (those still present).
  /// Caller holds mutex_.
  std::vector<in_flight> extract_locked(const std::vector<std::uint64_t>& ids);
  /// True when the response watchdog applies to this channel's link.
  bool watchdog_enabled() const;
  /// When the oldest in-flight appeal is due for the response watchdog,
  /// its deadline; std::nullopt when the watchdog does not apply.
  /// Caller holds mutex_.
  std::optional<std::chrono::steady_clock::time_point> watchdog_due_locked();
  /// Declares the link dead and completes every overdue appeal locally
  /// when the watchdog deadline has passed. Caller holds `lock`; it is
  /// released and re-taken around the local completions.
  void reap_overdue(std::unique_lock<std::mutex>& lock);

  cloud_backend& backend_;
  link_config config_;
  std::string name_;
  std::unique_ptr<cloud_transport> transport_;

  /// Serializes local fallback scoring: the coalescing thread and the
  /// transport reader may both complete entries locally while the link
  /// dies, and backend_.infer (a network forward) is not thread-safe.
  std::mutex fallback_mutex_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;     // coalescing thread wake-ups
  std::condition_variable drained_;  // drain() waiters
  std::deque<pending> pending_;
  std::unordered_map<std::uint64_t, in_flight> in_flight_;
  /// Wire ids of the batch the coalescing thread is sending right now:
  /// on_link_failure() must not extract (and destroy) entries the send
  /// path still reads through raw pointers; the sender sweeps them
  /// itself after the send returns.
  std::vector<std::uint64_t> sending_ids_;
  /// (wire id, batched_at) in send order, for the response watchdog;
  /// lazily pruned of already-completed ids.
  std::deque<std::pair<std::uint64_t, std::chrono::steady_clock::time_point>>
      flight_order_;
  std::uint64_t next_wire_id_ = 0;
  std::size_t outstanding_ = 0;
  std::size_t completed_ = 0;
  std::size_t local_fallbacks_ = 0;
  bool link_down_ = false;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace appeal::serve
