// Asynchronous appeal dispatcher with a simulated edge→cloud link.
//
// Appeals complete on a background thread after a modeled delay derived
// from the collab::cost_model latency coefficients:
//   transmit = input_kb * comm_ms_per_kb   (serialized: one uplink)
//   fixed    = comm_round_trip_ms          (propagation, overlapped)
//   cloud    = cloud_mflops / cloud_gflops (cloud compute, overlapped)
// Transmissions serialize on the uplink (a later appeal waits for the
// radio), while propagation and cloud compute pipeline — so throughput is
// bounded by bandwidth and latency by the full round trip, matching how a
// real offload link behaves under load. `time_scale` scales all simulated
// delays (0 disables them entirely for fast tests).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "collab/cost_model.hpp"
#include "serve/backends.hpp"
#include "serve/request.hpp"

namespace appeal::serve {

struct link_config {
  double time_scale = 1.0;  // multiplier on all simulated delays
};

class cloud_channel {
 public:
  /// Called on the channel thread when an appeal completes.
  using completion_fn =
      std::function<void(request&&, std::size_t cloud_prediction,
                         double link_ms)>;

  cloud_channel(cloud_backend& backend, const collab::cost_model& link,
                const link_config& cfg);
  ~cloud_channel();

  /// Enqueues an appeal; returns immediately. The completion callback
  /// fires after the simulated link delay.
  void appeal(request&& r, completion_fn on_complete);

  /// Blocks until every appeal enqueued so far has completed.
  void drain();

  /// Total appeals completed.
  std::size_t completed() const;

  /// Simulated per-appeal round-trip (ms, unscaled): transmit + fixed +
  /// cloud compute. Matches the offload term of overall_latency_ms.
  double round_trip_ms() const { return transmit_ms_ + overlap_ms_; }

 private:
  struct pending {
    request req;
    completion_fn on_complete;
  };
  struct in_flight {
    request req;
    completion_fn on_complete;
    std::size_t prediction = 0;
    double link_ms = 0.0;
    std::chrono::steady_clock::time_point complete_at;
  };

  void run();

  cloud_backend& backend_;
  double transmit_ms_;  // serialized uplink occupancy per appeal
  double overlap_ms_;   // propagation + cloud compute (pipelined)
  double time_scale_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;      // channel thread wake-ups
  std::condition_variable drained_;   // drain() waiters
  std::queue<pending> pending_;
  // Completion deadlines are FIFO (constant overlap on a monotone
  // send_end), so a plain queue is a valid timer wheel here.
  std::queue<in_flight> in_flight_;
  std::chrono::steady_clock::time_point link_free_at_;
  std::size_t outstanding_ = 0;
  std::size_t completed_ = 0;
  bool stopping_ = false;
  std::thread worker_;
};

}  // namespace appeal::serve
