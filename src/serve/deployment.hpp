// One named model deployment behind the serve::server facade.
//
// A deployment is a (little, big) pair served at scale: `shards` engine
// instances — each with its own request queue, batcher, and edge worker
// pool — behind one router, sharing one cloud_channel (a deployment has
// one uplink; appeals from every shard serialize on the same simulated
// radio), one per-deployment threshold_controller (δ adapts to the
// deployment's whole traffic, not per-shard slices of it), and one
// serve_stats aggregation point. Backends come from factories so each
// shard/worker gets its own instance (stateful network backends stay
// single-threaded) and the deployment owns everything it runs.
//
// Routing: `key_affine` hashes request.key onto a shard — the same key
// always lands on the same shard (cache affinity, per-key ordering);
// `least_loaded` picks the shard with the shallowest queue.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace appeal::serve {

/// Builds the edge backend for worker `worker` of shard `shard`.
using edge_backend_factory = std::function<std::unique_ptr<edge_backend>(
    std::size_t shard, std::size_t worker)>;
using cloud_backend_factory =
    std::function<std::unique_ptr<cloud_backend>()>;

/// How the router spreads a deployment's traffic over its shards.
enum class routing_policy { key_affine, least_loaded };

/// Numeric precision of the edge (little-network) inference path.
/// `fp32` serves the float network; `int8` serves the quant:: rewrite at
/// 8 bits everywhere; `autotuned` serves per-layer bit-widths chosen by
/// quant::autotune_bit_widths under an accuracy budget. The loader that
/// builds the edge backends performs the actual quantization (it owns the
/// calibration data); the deployment records the choice and exports it.
enum class edge_precision { fp32, int8, autotuned };

/// Parses "fp32" | "int8" | "auto"; throws on anything else.
edge_precision parse_edge_precision(const std::string& name);
const char* edge_precision_name(edge_precision p);

struct deployment_config {
  std::size_t shards = 1;
  /// Per-shard engine configuration. `shard.threshold` configures the
  /// per-deployment δ controller, `shard.link`/`shard.channel` the shared
  /// cloud uplink, `shard.stats` the shared stats sink, and
  /// `shard.admission` the admission policy applied at each shard's
  /// queue; `shard.shard_id` is overwritten per shard. The serving-scale
  /// knobs — `shard.num_workers` (edge threads per shard),
  /// `shard.queue_capacity` (the request queue work waits in), and
  /// `shard.pipeline` (the bounded hand-off queues between pipeline
  /// stages) — are validated by the deployment constructor; see
  /// validate(). Split-computing appeals are configured through
  /// `shard.channel.split`: `mode` (off | fixed | auto), `cut` (the
  /// pinned cut id in fixed mode), and `cuts` (the canonical cloud
  /// model's cut table from serve::enumerate_cloud_cuts — mandatory for
  /// any mode but off, so both link ends share one source of truth).
  engine_config shard;
  routing_policy routing = routing_policy::key_affine;
  /// Edge inference precision (metadata: the edge backend factory must
  /// build matching backends). Exported as the appeal_edge_bits gauge.
  edge_precision precision = edge_precision::fp32;
  /// Narrowest weight bit-width the edge path deploys: 32 for fp32,
  /// quant_report::min_bits() for the quantized modes.
  int edge_weight_bits = 32;
};

/// Rejects configurations that would deadlock or serve nothing: zero
/// shards/workers, any zero-capacity queue (the request queue or a
/// pipeline hand-off queue), a zero max batch size. Throws util::error;
/// the deployment constructor runs this before building any resource.
/// (A cross-deployment `gemm_threads` conflict is NOT an error — the
/// pool is process-global and the last writer wins — but the engine logs
/// it instead of clobbering silently.)
void validate(const deployment_config& cfg);

class deployment {
 public:
  deployment(std::string name, const deployment_config& cfg,
             edge_backend_factory edge, cloud_backend_factory cloud);
  ~deployment();

  deployment(const deployment&) = delete;
  deployment& operator=(const deployment&) = delete;

  const std::string& name() const { return name_; }
  std::size_t num_shards() const { return engines_.size(); }

  /// The shard the router would send `key` to under key-affine routing.
  std::size_t shard_for_key(std::uint64_t key) const;

  /// Routes to a shard and submits under its admission policy.
  std::future<response> submit(inference_request&& req);

  /// Blocks until every submitted request has completed.
  void drain();

  /// Stops all shards and drains the shared channel. Idempotent.
  void shutdown();

  /// Per-deployment aggregated statistics (all shards record here).
  const serve_stats& stats() const { return stats_; }
  /// Snapshot with the shared cloud link's wire counters overlaid
  /// (counted from the last reset_stats(), like every other statistic).
  stats_snapshot snapshot() const;
  void reset_stats() {
    stats_.reset();
    link_baseline_ = channel_.counters();
  }

  /// The deployment's one uplink (appeals from every shard coalesce on
  /// it).
  const cloud_channel& channel() const { return channel_; }

  threshold_controller& controller() { return controller_; }
  engine& shard(std::size_t i) { return *engines_.at(i); }
  const deployment_config& config() const { return config_; }

  /// Sum of admission-shed requests across shards (introspection; the
  /// canonical count is stats().snapshot().shed).
  std::size_t shed_total() const;

 private:
  std::string name_;
  deployment_config config_;
  std::unique_ptr<cloud_backend> cloud_;
  serve_stats stats_;
  threshold_controller controller_;
  cloud_channel channel_;
  /// Channel counters at the last reset_stats(); snapshot() reports the
  /// delta so wire statistics cover the same window as everything else.
  link_counters link_baseline_;
  std::vector<std::unique_ptr<engine>> engines_;
};

}  // namespace appeal::serve
