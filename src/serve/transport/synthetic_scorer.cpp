#include "serve/transport/synthetic_scorer.hpp"

#include "util/hash.hpp"

namespace appeal::serve::transport {

std::size_t synthetic_big_prediction(std::uint64_t key, std::size_t label,
                                     std::size_t num_classes,
                                     std::uint64_t seed, double accuracy) {
  const std::uint64_t h = util::mix64(util::mix64(seed) ^ key);
  if (label >= num_classes) return static_cast<std::size_t>(h % num_classes);
  // Top 53 bits → uniform double in [0, 1), the per-input correctness coin.
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < accuracy ? label : (label + 2) % num_classes;
}

}  // namespace appeal::serve::transport
