#include "serve/transport/wire.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace appeal::serve::wire {

namespace {

// Integers cross the wire little-endian regardless of host order; floats
// as their IEEE-754 bit patterns through the same integer path.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over a frame payload.
class cursor {
 public:
  cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const std::uint8_t* p = take(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::uint64_t u64() {
    const std::uint8_t* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str(std::size_t n) {
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }

  void floats(float* dst, std::size_t n) {
    if (n == 0) return;
    const std::uint8_t* p = take(4 * n);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, p, 4 * n);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t v = 0;
        for (int b = 3; b >= 0; --b) v = (v << 8) | p[4 * i + b];
        dst[i] = std::bit_cast<float>(v);
      }
    }
  }

  std::size_t remaining() const { return size_ - offset_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    APPEAL_CHECK(n <= size_ - offset_,
                 "wire record truncated: payload ends mid-record");
    const std::uint8_t* p = data_ + offset_;
    offset_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

void check_encodable_version(std::uint8_t version) {
  APPEAL_CHECK(version >= kVersionV2 && version <= kVersion,
               "cannot encode an unknown wire protocol version");
}

void put_header(std::vector<std::uint8_t>& out, std::uint8_t version,
                frame_type type, std::size_t count) {
  APPEAL_CHECK(count <= 0xFFFF, "wire batch too large for a u16 count");
  put_u32(out, kMagic);
  put_u8(out, version);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, static_cast<std::uint16_t>(count));
  put_u32(out, 0);  // payload_bytes backpatched below
}

void patch_payload_bytes(std::vector<std::uint8_t>& out) {
  const std::size_t payload = out.size() - kHeaderBytes;
  APPEAL_CHECK(payload <= kMaxFrameBytes, "encoded frame exceeds kMaxFrameBytes");
  for (int i = 0; i < 4; ++i) {
    out[8 + i] = static_cast<std::uint8_t>(payload >> (8 * i));
  }
}

/// flags bit0: a trace_id u64 follows deadline_ms (wire v3 only).
inline constexpr std::uint8_t kAppealFlagTraced = 0x01;
/// flags bit1: a cut_id u32 follows the (optional) trace_id, and the
/// tensor payload is the feature map at that cut (wire v5 only).
inline constexpr std::uint8_t kAppealFlagSplit = 0x02;

/// A split appeal only rides a v5 frame with a real feature tensor;
/// anything else degrades to the raw input the receiver can always score.
bool encodes_split(const appeal_view& a, std::uint8_t version) {
  return version >= kVersion && a.split_cut != 0 && a.feature != nullptr &&
         a.feature->size() > 0;
}

void put_appeal(std::vector<std::uint8_t>& out, const appeal_view& a,
                std::uint8_t version) {
  static const tensor kEmpty;
  const bool split = encodes_split(a, version);
  const tensor& t = split ? *a.feature
                          : (a.input != nullptr ? *a.input : kEmpty);
  APPEAL_CHECK(a.model.size() <= 0xFFFF, "deployment name too long for wire");
  const bool traced = version >= 3 && a.trace_id != 0;
  put_u64(out, a.id);
  put_u64(out, a.key);
  put_u64(out, a.label);
  put_u8(out, static_cast<std::uint8_t>(a.priority));
  put_u8(out, static_cast<std::uint8_t>((traced ? kAppealFlagTraced : 0) |
                                        (split ? kAppealFlagSplit : 0)));
  put_u16(out, static_cast<std::uint16_t>(a.model.size()));
  put_f64(out, a.deadline_ms);
  if (traced) put_u64(out, a.trace_id);
  if (split) put_u32(out, a.split_cut);
  put_u32(out, static_cast<std::uint32_t>(t.dims().rank()));
  for (const std::size_t d : t.dims().dims()) {
    put_u32(out, static_cast<std::uint32_t>(d));
  }
  put_u32(out, static_cast<std::uint32_t>(t.size()));
  out.insert(out.end(), a.model.begin(), a.model.end());
  if (t.size() == 0) return;
  const std::size_t base = out.size();
  out.resize(base + 4 * t.size());
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data() + base, t.data(), 4 * t.size());
  } else {
    out.resize(base);
    for (const float v : t.values()) put_f32(out, v);
  }
}

}  // namespace

std::size_t appeal_wire_bytes(const appeal_view& a, std::uint8_t version) {
  const bool split = encodes_split(a, version);
  const tensor* payload = split ? a.feature : a.input;
  const std::size_t rank = payload != nullptr ? payload->dims().rank() : 0;
  const std::size_t values = payload != nullptr ? payload->size() : 0;
  const std::size_t trace = version >= 3 && a.trace_id != 0 ? 8 : 0;
  const std::size_t cut = split ? 4 : 0;
  // Fixed fields (36) + optional trace id + optional cut id + rank and
  // value-count words + dims + name + floats.
  return 36 + trace + cut + 4 + 4 * rank + 4 + a.model.size() + 4 * values;
}

std::vector<std::uint8_t> encode_appeal_batch(
    const std::vector<appeal_view>& batch, std::uint8_t version) {
  check_encodable_version(version);
  std::vector<std::uint8_t> out;
  std::size_t total = kHeaderBytes;
  for (const appeal_view& a : batch) total += appeal_wire_bytes(a, version);
  out.reserve(total);
  put_header(out, version, frame_type::appeal_batch, batch.size());
  for (const appeal_view& a : batch) put_appeal(out, a, version);
  patch_payload_bytes(out);
  return out;
}

std::vector<std::uint8_t> encode_response_batch(
    const std::vector<response_record>& batch, std::uint8_t version) {
  check_encodable_version(version);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kResponseRecordBytes * batch.size());
  put_header(out, version, frame_type::response_batch, batch.size());
  for (const response_record& r : batch) {
    // v2/v3 framing cannot say `overloaded`, and only v5 knows
    // `rejected`; the closest honest answer an old edge understands is
    // `expired` (don't wait for a prediction).
    response_status status = r.status;
    if (version < 4 && status == response_status::overloaded) {
      status = response_status::expired;
    }
    if (version < 5 && status == response_status::rejected) {
      status = response_status::expired;
    }
    put_u64(out, r.id);
    put_u64(out, r.prediction);
    put_u8(out, static_cast<std::uint8_t>(status));
    put_f64(out, r.cloud_ms);
    if (version >= 3) {
      put_f64(out, r.cloud_queue_ms);
      put_f64(out, r.cloud_score_ms);
    }
    if (version >= 4) put_f64(out, r.retry_after_ms);
  }
  patch_payload_bytes(out);
  return out;
}

std::vector<appeal_record> decode_appeal_batch(const frame& f) {
  APPEAL_CHECK(f.type == frame_type::appeal_batch,
               "decode_appeal_batch on a non-appeal frame");
  cursor c(f.payload.data(), f.payload.size());
  std::vector<appeal_record> out;
  out.reserve(f.count);
  for (std::uint16_t i = 0; i < f.count; ++i) {
    appeal_record a;
    a.id = c.u64();
    a.key = c.u64();
    a.label = c.u64();
    const std::uint8_t prio = c.u8();
    APPEAL_CHECK(prio <= static_cast<std::uint8_t>(priority_class::batch),
                 "wire appeal carries an unknown priority class");
    a.priority = static_cast<priority_class>(prio);
    const std::uint8_t flags = c.u8();
    const std::uint16_t model_len = c.u16();
    a.deadline_ms = c.f64();
    if (f.version >= 3 && (flags & kAppealFlagTraced) != 0) {
      a.trace_id = c.u64();
    }
    if (f.version >= 5 && (flags & kAppealFlagSplit) != 0) {
      a.split_cut = c.u32();
      APPEAL_CHECK(a.split_cut != 0,
                   "wire split appeal carries cut id 0 (raw input)");
    }
    const std::uint32_t rank = c.u32();
    APPEAL_CHECK(rank <= 8, "wire tensor rank implausibly large");
    // No tensor a frame can carry has more floats than the frame cap;
    // checking per-dim keeps the product from wrapping std::size_t.
    constexpr std::size_t kElementCap = kMaxFrameBytes / 4;
    std::vector<std::size_t> dims(rank);
    std::size_t elements = rank == 0 ? 0 : 1;
    for (std::uint32_t d = 0; d < rank; ++d) {
      dims[d] = c.u32();
      APPEAL_CHECK(dims[d] == 0 || elements <= kElementCap / dims[d],
                   "wire tensor element count exceeds the frame cap");
      elements *= dims[d];
    }
    const std::uint32_t values = c.u32();
    APPEAL_CHECK(values == elements,
                 "wire tensor value count disagrees with its shape");
    APPEAL_CHECK(4ull * values <= c.remaining(),
                 "wire tensor payload larger than the frame");
    a.model = c.str(model_len);
    if (rank > 0) {
      std::vector<float> data(values);
      c.floats(data.data(), values);
      a.input = tensor(shape(std::move(dims)), std::move(data));
    }
    out.push_back(std::move(a));
  }
  APPEAL_CHECK(c.remaining() == 0, "trailing bytes after the last record");
  return out;
}

std::vector<response_record> decode_response_batch(const frame& f) {
  APPEAL_CHECK(f.type == frame_type::response_batch,
               "decode_response_batch on a non-response frame");
  cursor c(f.payload.data(), f.payload.size());
  std::vector<response_record> out;
  out.reserve(f.count);
  for (std::uint16_t i = 0; i < f.count; ++i) {
    response_record r;
    r.id = c.u64();
    r.prediction = c.u64();
    const std::uint8_t status = c.u8();
    // `overloaded` only exists from the v4 dialect and `rejected` from
    // v5; on an older frame the byte is as unknown as any other garbage.
    const std::uint8_t max_status = static_cast<std::uint8_t>(
        f.version >= 5   ? response_status::rejected
        : f.version >= 4 ? response_status::overloaded
                         : response_status::expired);
    APPEAL_CHECK(status <= max_status,
                 "wire response carries an unknown status");
    r.status = static_cast<response_status>(status);
    r.cloud_ms = c.f64();
    if (f.version >= 3) {
      r.cloud_queue_ms = c.f64();
      r.cloud_score_ms = c.f64();
    }
    if (f.version >= 4) r.retry_after_ms = c.f64();
    out.push_back(r);
  }
  APPEAL_CHECK(c.remaining() == 0, "trailing bytes after the last record");
  return out;
}

void frame_splitter::feed(const std::uint8_t* data, std::size_t n) {
  // Compact lazily: only when the consumed prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

std::optional<frame> frame_splitter::next() {
  if (buffered() < kHeaderBytes) return std::nullopt;
  cursor header(buffer_.data() + consumed_, kHeaderBytes);
  APPEAL_CHECK(header.u32() == kMagic, "wire stream lost framing (bad magic)");
  const std::uint8_t version = header.u8();
  APPEAL_CHECK(version >= kVersionV2 && version <= kVersion,
               "unsupported wire protocol version");
  const std::uint8_t type = header.u8();
  APPEAL_CHECK(type == static_cast<std::uint8_t>(frame_type::appeal_batch) ||
                   type == static_cast<std::uint8_t>(frame_type::response_batch),
               "unknown wire frame type");
  const std::uint16_t count = header.u16();
  const std::uint32_t payload_bytes = header.u32();
  APPEAL_CHECK(payload_bytes <= kMaxFrameBytes,
               "oversized wire frame rejected");
  if (buffered() < kHeaderBytes + payload_bytes) return std::nullopt;
  frame f;
  f.type = static_cast<frame_type>(type);
  f.version = version;
  f.count = count;
  const std::uint8_t* body = buffer_.data() + consumed_ + kHeaderBytes;
  f.payload.assign(body, body + payload_bytes);
  consumed_ += kHeaderBytes + payload_bytes;
  return f;
}

}  // namespace appeal::serve::wire
