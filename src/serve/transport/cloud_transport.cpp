#include "serve/transport/cloud_transport.hpp"

#include "serve/transport/sim_transport.hpp"
#include "serve/transport/socket_transport.hpp"
#include "util/error.hpp"

namespace appeal::serve {

transport_kind parse_transport_kind(const std::string& name) {
  if (name == "sim") return transport_kind::sim;
  if (name == "uds") return transport_kind::uds;
  if (name == "tcp") return transport_kind::tcp;
  throw util::error("unknown transport '" + name + "' (want sim|uds|tcp)");
}

const char* transport_kind_name(transport_kind kind) {
  switch (kind) {
    case transport_kind::sim:
      return "sim";
    case transport_kind::uds:
      return "uds";
    case transport_kind::tcp:
      return "tcp";
  }
  return "?";
}

std::unique_ptr<cloud_transport> make_cloud_transport(
    const link_config& cfg, cloud_backend& fallback,
    const collab::cost_model& link) {
  switch (cfg.transport) {
    case transport_kind::sim:
      return std::make_unique<sim_transport>(fallback, link, cfg.time_scale);
    case transport_kind::uds:
    case transport_kind::tcp:
      return std::make_unique<socket_transport>(cfg.transport, cfg.endpoint,
                                                cfg.response_timeout_ms);
  }
  throw util::error("unreachable transport kind");
}

}  // namespace appeal::serve
