#include "serve/transport/cloud_transport.hpp"

#include "serve/transport/fault_transport.hpp"
#include "serve/transport/sim_transport.hpp"
#include "serve/transport/socket_transport.hpp"
#include "util/error.hpp"

namespace appeal::serve {

transport_kind parse_transport_kind(const std::string& name) {
  if (name == "sim") return transport_kind::sim;
  if (name == "uds") return transport_kind::uds;
  if (name == "tcp") return transport_kind::tcp;
  throw util::error("unknown transport '" + name + "' (want sim|uds|tcp)");
}

const char* transport_kind_name(transport_kind kind) {
  switch (kind) {
    case transport_kind::sim:
      return "sim";
    case transport_kind::uds:
      return "uds";
    case transport_kind::tcp:
      return "tcp";
  }
  return "?";
}

std::unique_ptr<cloud_transport> make_cloud_transport(
    const link_config& cfg, cloud_backend& fallback,
    const collab::cost_model& link, std::uint64_t fault_salt) {
  std::unique_ptr<cloud_transport> transport;
  switch (cfg.transport) {
    case transport_kind::sim:
      transport =
          std::make_unique<sim_transport>(fallback, link, cfg.time_scale);
      break;
    case transport_kind::uds:
    case transport_kind::tcp:
      transport = std::make_unique<socket_transport>(
          cfg.transport, cfg.endpoint, cfg.response_timeout_ms);
      break;
  }
  APPEAL_CHECK(transport != nullptr, "unreachable transport kind");
  if (!cfg.fault.empty()) {
    fault_config fault = parse_fault_spec(cfg.fault);
    // Decorrelate the fault plan from reconnects (still deterministic:
    // the same run reconnects at the same epochs).
    fault.seed ^= fault_salt * 0x9E3779B97F4A7C15ULL;
    transport = std::make_unique<fault_transport>(std::move(transport),
                                                  fault);
  }
  return transport;
}

}  // namespace appeal::serve
