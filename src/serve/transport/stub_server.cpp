#include "serve/transport/stub_server.hpp"

#include <unistd.h>

#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {
using clock = std::chrono::steady_clock;
}  // namespace

stub_server::stub_server(const stub_server_config& cfg, scorer_fn scorer)
    : config_(cfg), scorer_(std::move(scorer)) {
  APPEAL_CHECK(config_.kind == transport_kind::uds ||
                   config_.kind == transport_kind::tcp,
               "stub_server listens on uds or tcp");
  APPEAL_CHECK(scorer_ != nullptr, "stub_server needs a scorer");
}

stub_server::~stub_server() { stop(); }

void stub_server::start() {
  APPEAL_CHECK(!started_, "stub_server started twice");
  started_ = true;
  listener_ = config_.kind == transport_kind::uds
                  ? net::listen_uds(config_.endpoint)
                  : net::listen_tcp(config_.endpoint);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void stub_server::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();  // unblocks accept()
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<connection>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.swap(connections_);
  }
  for (auto& conn : live) {
    conn->socket.shutdown();
    if (conn->thread.joinable()) conn->thread.join();
  }
  listener_.reset();
  if (started_ && config_.kind == transport_kind::uds) {
    ::unlink(config_.endpoint.c_str());
  }
}

std::uint16_t stub_server::tcp_port() const {
  APPEAL_CHECK(config_.kind == transport_kind::tcp,
               "tcp_port() on a non-tcp stub");
  return net::local_tcp_port(listener_);
}

stub_server_counters stub_server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void stub_server::reap_finished_connections() {
  std::vector<std::unique_ptr<connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void stub_server::accept_loop() {
  for (;;) {
    net::fd conn = net::accept_connection(listener_);
    if (!conn.valid()) return;  // listener shut down
    if (stopping_.load(std::memory_order_acquire)) return;
    reap_finished_connections();
    auto c = std::make_unique<connection>();
    c->socket = std::move(conn);
    connection* raw = c.get();
    c->thread = std::thread([this, raw] { serve_connection(*raw); });
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.connections += 1;
    connections_.push_back(std::move(c));
  }
}

void stub_server::serve_connection(connection& conn) {
  net::fd& socket = conn.socket;
  wire::frame_splitter splitter;
  std::uint8_t chunk[64 * 1024];
  try {
    for (;;) {
      const std::size_t n = net::read_some(socket, chunk, sizeof(chunk));
      if (n == 0) break;  // client done (or stop())
      splitter.feed(chunk, n);
      std::size_t sent_bytes = 0;
      std::size_t batches = 0;
      std::size_t appeals = 0;
      while (std::optional<wire::frame> f = splitter.next()) {
        const std::vector<wire::appeal_record> batch =
            wire::decode_appeal_batch(*f);
        std::vector<wire::response_record> responses;
        responses.reserve(batch.size());
        for (const wire::appeal_record& a : batch) {
          const clock::time_point t0 = clock::now();
          wire::response_record r;
          r.id = a.id;
          r.prediction = scorer_(a);
          r.cloud_ms =
              std::chrono::duration<double, std::milli>(clock::now() - t0)
                  .count();
          responses.push_back(r);
        }
        const std::vector<std::uint8_t> framed =
            wire::encode_response_batch(responses);
        net::write_all(socket, framed.data(), framed.size());
        sent_bytes += framed.size();
        batches += 1;
        appeals += batch.size();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.bytes_received += n;
      counters_.bytes_sent += sent_bytes;
      counters_.batches += batches;
      counters_.appeals += appeals;
    }
  } catch (const util::error& e) {
    // Corrupt stream or dead client: drop the connection, keep serving
    // the others.
    if (!stopping_.load(std::memory_order_acquire)) {
      APPEAL_LOG_WARN << "cloud_stub connection dropped: " << e.what();
    }
  }
  // Hands the connection to the accept loop's reaper (the fd closes
  // there, with the join).
  conn.done.store(true, std::memory_order_release);
}

}  // namespace appeal::serve
