#include "serve/transport/stub_server.hpp"

#include <unistd.h>

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {
using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}
}  // namespace

// --- cloud_work_queue ------------------------------------------------------

cloud_work_queue::admit cloud_work_queue::push(wire::appeal_record&& record,
                                               std::uint64_t owner) {
  item it;
  it.enqueued = clock::now();
  it.deadline = clock::time_point::max();
  // deadline_ms is an untrusted wire field: NaN fails the >= 0 test, and
  // anything beyond a day is treated as "no deadline" rather than fed to
  // duration_cast (float -> integer conversion of a huge/inf value is
  // undefined behavior, not just a silly deadline).
  constexpr double kMaxDeadlineMs = 86'400'000.0;
  const bool deadlined =
      record.deadline_ms >= 0.0 && record.deadline_ms < kMaxDeadlineMs;
  if (deadlined) {
    it.deadline = it.enqueued +
                  std::chrono::duration_cast<clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          record.deadline_ms));
  }
  it.owner = owner;
  it.record = std::move(record);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return admit::closed;
    const std::size_t depth = interactive_.size() + batch_.size();
    if (capacity_ > 0 && depth >= capacity_) {
      return admit::full;  // at capacity: the caller sheds
    }
    if (batch_capacity_ > 0 &&
        it.record.priority == priority_class::batch &&
        batch_.size() >= batch_capacity_) {
      return admit::full;  // batch lane over its budget
    }
    // Projected deadline miss: the arrival queues behind `depth` items
    // at the measured drain rate; if its whole deadline budget is spent
    // before a worker could reach it, queueing it only manufactures an
    // expiry. Needs a warmed-up estimate (two pops) to ever fire.
    if (shed_projected_ && deadlined && ema_ms_per_item_ > 0.0 &&
        static_cast<double>(depth + 1) * ema_ms_per_item_ >
            it.record.deadline_ms) {
      return admit::projected_miss;
    }
    lane& l = it.record.priority == priority_class::interactive ? interactive_
                                                                : batch_;
    // Key (deadline, seq): tightest deadline pops first; deadline-free
    // items (time_point::max()) sort after every deadlined one; seq
    // keeps equals — and the no-deadline tail — FIFO.
    l.emplace(std::make_pair(it.deadline, next_seq_++), std::move(it));
  }
  ready_.notify_one();
  return admit::ok;
}

std::vector<cloud_work_queue::item> cloud_work_queue::pop_batch(
    std::size_t max_items) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool was_idle = interactive_.empty() && batch_.empty();
  ready_.wait(lock, [&] {
    return closed_ || !interactive_.empty() || !batch_.empty();
  });
  std::vector<item> out;
  out.reserve(std::min(max_items, interactive_.size() + batch_.size()));
  for (lane* l : {&interactive_, &batch_}) {
    while (out.size() < max_items && !l->empty()) {
      out.push_back(std::move(l->begin()->second));
      l->erase(l->begin());
    }
  }
  // Drain-rate EMA feeding the overload retry-after hints: the interval
  // between successive pops across the whole worker pool, per item
  // popped — but only intervals where work was waiting the whole time.
  // Counting an idle gap (empty queue, worker parked in the wait above)
  // as drain time would inflate the estimate, and since the hints set
  // retry backoffs, longer hints create longer idle gaps: a feedback
  // loop. After idling, the clock re-arms instead.
  if (!out.empty()) {
    const clock::time_point now = clock::now();
    if (have_last_pop_ && !was_idle) {
      const double per_item =
          ms_between(last_pop_, now) / static_cast<double>(out.size());
      ema_ms_per_item_ = ema_ms_per_item_ == 0.0
                             ? per_item
                             : ema_ms_per_item_ +
                                   0.2 * (per_item - ema_ms_per_item_);
    }
    have_last_pop_ = true;
    last_pop_ = now;
    drained_ += out.size();
  }
  // More work than one batch: pass the baton to the next worker instead
  // of letting it sleep until the next push.
  if (!interactive_.empty() || !batch_.empty()) ready_.notify_one();
  return out;  // empty <=> closed and drained
}

void cloud_work_queue::close(bool discard) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    if (discard) {
      interactive_.clear();
      batch_.clear();
    }
  }
  ready_.notify_all();
}

std::size_t cloud_work_queue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return interactive_.size() + batch_.size();
}

cloud_work_queue::queue_stats cloud_work_queue::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  queue_stats s;
  s.depth = interactive_.size() + batch_.size();
  s.ms_per_item = ema_ms_per_item_;
  s.drained = drained_;
  return s;
}

double cloud_work_queue::estimated_wait_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<double>(interactive_.size() + batch_.size()) *
         ema_ms_per_item_;
}

// --- stub_server -----------------------------------------------------------

namespace {

/// Validates at construction (not first use) and adapts a per-appeal
/// scorer into the worker pool's batch interface.
stub_server::scorer_factory wrap_scorer(stub_server::scorer_fn scorer) {
  APPEAL_CHECK(scorer != nullptr, "stub_server needs a scorer");
  return [scorer = std::move(scorer)](std::size_t) {
    return [scorer](const std::vector<const wire::appeal_record*>& batch) {
      std::vector<std::size_t> predictions;
      predictions.reserve(batch.size());
      for (const wire::appeal_record* a : batch) {
        predictions.push_back(scorer(*a));
      }
      return predictions;
    };
  };
}

}  // namespace

stub_server::stub_server(const stub_server_config& cfg, scorer_fn scorer)
    : stub_server(cfg, wrap_scorer(std::move(scorer))) {}

stub_server::stub_server(const stub_server_config& cfg, scorer_factory factory)
    : config_(cfg),
      scorer_factory_(std::move(factory)),
      metric_appeals_(obs::default_registry().get_counter(
          "appeal_cloud_appeals_total", {},
          "appeals received by the cloud stub")),
      metric_scored_(obs::default_registry().get_counter(
          "appeal_cloud_scored_total", {},
          "appeals answered with a prediction")),
      metric_expired_(obs::default_registry().get_counter(
          "appeal_cloud_expired_total", {},
          "appeals shed because their deadline was blown in the queue")),
      metric_overloaded_(obs::default_registry().get_counter(
          "appeal_cloud_overloaded_total", {},
          "appeals shed at admission to a full work queue")),
      metric_projected_(obs::default_registry().get_counter(
          "appeal_cloud_projected_total", {},
          "appeals shed at admission because the queue wait alone would "
          "blow their deadline")),
      metric_queue_depth_(obs::default_registry().get_gauge(
          "appeal_cloud_queue_depth", {},
          "appeals waiting in the cloud work queue")) {
  APPEAL_CHECK(config_.kind == transport_kind::uds ||
                   config_.kind == transport_kind::tcp,
               "stub_server listens on uds or tcp");
  APPEAL_CHECK(scorer_factory_ != nullptr, "stub_server needs a scorer");
  config_.workers = std::max<std::size_t>(1, config_.workers);
  config_.max_cloud_batch = std::max<std::size_t>(1, config_.max_cloud_batch);
}

stub_server::~stub_server() { stop(); }

void stub_server::start() {
  APPEAL_CHECK(!started_, "stub_server started twice");
  started_ = true;
  // Build every worker's scorer BEFORE any thread spawns: a factory that
  // throws (missing weights file, architecture mismatch) must surface as
  // a clean util::error from start(), not std::terminate from inside a
  // worker thread. Forwards still draw from each worker's thread-local
  // inference workspace at call time.
  std::vector<batch_scorer_fn> scorers;
  scorers.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    scorers.push_back(scorer_factory_(w));
    APPEAL_CHECK(scorers.back() != nullptr, "scorer factory returned null");
  }
  listener_ = config_.kind == transport_kind::uds
                  ? net::listen_uds(config_.endpoint)
                  : net::listen_tcp(config_.endpoint);
  scorers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    scorers_.emplace_back(
        [this, score = std::move(scorers[w])] { scorer_loop(score); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void stub_server::stop() {
  if (stopping_.exchange(true)) return;
  listener_.shutdown();  // unblocks accept()
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::shared_ptr<connection>> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    live.reserve(connections_.size());
    for (auto& [id, conn] : connections_) live.push_back(std::move(conn));
    connections_.clear();
  }
  for (auto& conn : live) {
    conn->socket.shutdown();
    if (conn->thread.joinable()) conn->thread.join();
  }
  // Connection readers are done: no more pushes. Discard whatever is
  // still queued — every client socket is already shut, so scoring the
  // backlog would burn a full inference per appeal to produce responses
  // nobody can receive — and join the workers.
  queue_.close(/*discard=*/true);
  for (std::thread& t : scorers_) t.join();
  scorers_.clear();
  listener_.reset();
  if (started_ && config_.kind == transport_kind::uds) {
    ::unlink(config_.endpoint.c_str());
  }
}

std::uint16_t stub_server::tcp_port() const {
  APPEAL_CHECK(config_.kind == transport_kind::tcp,
               "tcp_port() on a non-tcp stub");
  return net::local_tcp_port(listener_);
}

stub_server_counters stub_server::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void stub_server::reap_finished_connections() {
  std::vector<std::shared_ptr<connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (it->second->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(it->second));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // A worker may still hold the shared_ptr while writing a last response;
  // the fd closes when the final reference drops.
}

void stub_server::accept_loop() {
  for (;;) {
    net::fd conn = net::accept_connection(listener_);
    if (!conn.valid()) return;  // listener shut down
    if (stopping_.load(std::memory_order_acquire)) return;
    reap_finished_connections();
    auto c = std::make_shared<connection>();
    c->id = next_connection_id_++;
    c->socket = std::move(conn);
    // Register BEFORE the reader thread spawns: its first appeal can be
    // scored and answered before this loop resumes, and write_responses
    // must already find the connection in the routing table. (stop()
    // joins this acceptor before touching connections_, so the
    // not-yet-assigned `thread` member is never observed concurrently.)
    {
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.connections += 1;
      connections_.emplace(c->id, c);
    }
    connection* raw = c.get();
    c->thread = std::thread([this, raw] { serve_connection(*raw); });
  }
}

void stub_server::serve_connection(connection& conn) {
  net::fd& socket = conn.socket;
  wire::frame_splitter splitter;
  std::uint8_t chunk[64 * 1024];
  try {
    for (;;) {
      const std::size_t n = net::read_some(socket, chunk, sizeof(chunk));
      if (n == 0) break;  // client done (or stop())
      splitter.feed(chunk, n);
      std::size_t batches = 0;
      std::size_t appeals = 0;
      std::size_t full_sheds = 0;
      std::size_t projected_sheds = 0;
      std::vector<wire::response_record> shed;
      while (std::optional<wire::frame> f = splitter.next()) {
        std::vector<wire::appeal_record> batch =
            wire::decode_appeal_batch(*f);
        // Remember the dialect the peer speaks; responses (from any
        // worker) go back at the same version.
        conn.wire_version.store(f->version, std::memory_order_relaxed);
        batches += 1;
        appeals += batch.size();
        for (wire::appeal_record& a : batch) {
          const std::uint64_t id = a.id;
          const cloud_work_queue::admit verdict =
              queue_.push(std::move(a), conn.id);
          if (verdict == cloud_work_queue::admit::ok) continue;
          // The queue won't take it — full lane (scorers can't keep up)
          // or a projected deadline miss. Either way this is OVERLOAD,
          // not expiry: the appeal never waited, so answer `overloaded`
          // with a retry-after hint sized to the current backlog and let
          // the edge decide between retrying and its local fallback.
          // (Peers at wire v2/v3 can't express `overloaded`; the encoder
          // downgrades it to `expired` for them.)
          wire::response_record r;
          r.id = id;
          r.status = wire::response_status::overloaded;
          r.retry_after_ms = std::max(1.0, queue_.estimated_wait_ms());
          shed.push_back(r);
          if (verdict == cloud_work_queue::admit::projected_miss) {
            ++projected_sheds;
          } else {
            ++full_sheds;
          }
        }
      }
      if (!shed.empty()) write_responses(conn.id, shed);
      metric_appeals_.add(appeals);
      metric_overloaded_.add(full_sheds);
      metric_projected_.add(projected_sheds);
      metric_queue_depth_.set(static_cast<double>(queue_.size()));
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.bytes_received += n;
      counters_.batches += batches;
      counters_.appeals += appeals;
      counters_.overloaded += full_sheds;
      counters_.projected += projected_sheds;
    }
  } catch (const util::error& e) {
    // Corrupt stream or dead client: drop the connection, keep serving
    // the others.
    if (!stopping_.load(std::memory_order_acquire)) {
      APPEAL_LOG_WARN("cloud_stub")
          << "connection dropped" << util::kv("error", e.what());
    }
  }
  // Hands the connection to the accept loop's reaper (the fd closes
  // there, with the join).
  conn.done.store(true, std::memory_order_release);
}

void stub_server::scorer_loop(const batch_scorer_fn& score) {
  for (;;) {
    std::vector<cloud_work_queue::item> work =
        queue_.pop_batch(config_.max_cloud_batch);
    if (work.empty()) return;  // queue closed and drained

    // Shed what is already dead: an appeal whose deadline passed while
    // queued gets an immediate `expired` response, not a prediction the
    // edge can no longer use.
    const clock::time_point popped_at = clock::now();
    std::vector<const cloud_work_queue::item*> live;
    std::vector<const wire::appeal_record*> to_score;
    live.reserve(work.size());
    to_score.reserve(work.size());
    // Responses grouped by owning connection (one popped batch can span
    // clients).
    std::map<std::uint64_t, std::vector<wire::response_record>> routed;
    std::size_t expired = 0;
    for (const cloud_work_queue::item& it : work) {
      if (config_.shed_expired && popped_at > it.deadline) {
        wire::response_record r;
        r.id = it.record.id;
        r.status = wire::response_status::expired;
        r.cloud_ms = ms_between(it.enqueued, popped_at);
        r.cloud_queue_ms = r.cloud_ms;  // it only ever waited
        routed[it.owner].push_back(r);
        ++expired;
      } else {
        live.push_back(&it);
        to_score.push_back(&it.record);
      }
    }
    // Expired answers leave BEFORE scoring: holding them behind a slow
    // batch forward would let the edge's response watchdog fire and
    // complete the appeal from its fallback instead of as cloud_expired.
    if (expired > 0) {
      for (const auto& [owner, responses] : routed) {
        write_responses(owner, responses);
      }
      routed.clear();
    }

    if (!to_score.empty()) {
      std::vector<std::size_t> predictions;
      try {
        predictions = score(to_score);
        APPEAL_CHECK(predictions.size() == to_score.size(),
                     "stub scorer must return one prediction per appeal");
      } catch (const std::exception& e) {
        // A broken scorer must not take the server down; the unanswered
        // appeals hit the edge channel's response watchdog and complete
        // from its local fallback.
        APPEAL_LOG_ERROR("cloud_stub")
            << "scorer failed; the edge watchdog will fall back locally"
            << util::kv("batch", to_score.size())
            << util::kv("error", e.what());
        predictions.clear();
        live.clear();
      }
      const clock::time_point scored_at = clock::now();
      for (std::size_t i = 0; i < live.size(); ++i) {
        wire::response_record r;
        r.id = live[i]->record.id;
        if (predictions[i] == kRejectedPrediction) {
          // The scorer could not score this appeal as sent (unknown split
          // cut / feature shape). Tell the edge to answer locally — no
          // retry can fix a bad cut, so this is `rejected`, not
          // `overloaded`.
          r.status = wire::response_status::rejected;
        } else {
          r.prediction = predictions[i];
        }
        // Queue wait + scoring: what this appeal actually cost cloud-side
        // (the whole batch's scoring time is charged to each member — it
        // waited for the batch either way). The v3 split lets the edge
        // attribute the two separately in its trace spans.
        r.cloud_ms = ms_between(live[i]->enqueued, scored_at);
        r.cloud_queue_ms = ms_between(live[i]->enqueued, popped_at);
        r.cloud_score_ms = ms_between(popped_at, scored_at);
        routed[live[i]->owner].push_back(r);
      }
    }

    for (const auto& [owner, responses] : routed) {
      write_responses(owner, responses);
    }
    metric_scored_.add(live.size());
    metric_expired_.add(expired);
    metric_queue_depth_.set(static_cast<double>(queue_.size()));
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.cloud_batches += 1;
    counters_.scored += live.size();
    counters_.expired += expired;
  }
}

void stub_server::write_responses(
    std::uint64_t owner, const std::vector<wire::response_record>& responses) {
  std::shared_ptr<connection> conn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = connections_.find(owner);
    if (it != connections_.end()) conn = it->second;
  }
  if (conn == nullptr) return;  // client gone; nobody is listening
  const std::vector<std::uint8_t> framed = wire::encode_response_batch(
      responses, conn->wire_version.load(std::memory_order_relaxed));
  try {
    std::lock_guard<std::mutex> write_lock(conn->write_mutex);
    net::write_all(conn->socket, framed.data(), framed.size());
  } catch (const util::error&) {
    return;  // client hung up mid-write; its reader thread cleans up
  }
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.bytes_sent += framed.size();
}

}  // namespace appeal::serve
