// Deterministic fault injection around any cloud_transport.
//
// A fault_transport decorates the real link and misbehaves on a seeded
// schedule, so chaos runs are scriptable and bit-reproducible:
//   - drop:     an appeal frame silently vanishes (the edge's response
//               watchdog eventually trips and the breaker recovers);
//   - delay_ms: every forwarded frame waits first (send-side latency —
//               it blocks the coalescing thread, which is exactly the
//               backpressure a congested link applies);
//   - trunc:    only a prefix of the frame's appeals is forwarded (a
//               torn frame at batch granularity; the tail goes
//               unanswered);
//   - dup:      a completion batch is delivered twice (the channel's
//               wire-id demux must drop the second copy);
//   - kill_at:  the Nth appeal frame kills the connection — the inner
//               transport stops and the send throws, like a peer reset
//               mid-write.
//
// Spec grammar (engine_config link.fault / bench_serving --fault=...):
//   "drop=0.05,delay_ms=1,trunc=0.02,dup=0.02,kill_at=40,seed=7"
// Probabilities are per-frame Bernoulli draws from util::rng streams
// derived from `seed`; the same seed and traffic order reproduce the
// same faults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/transport/cloud_transport.hpp"
#include "util/rng.hpp"

namespace appeal::serve {

struct fault_config {
  double drop = 0.0;      // P(drop an appeal frame)
  double delay_ms = 0.0;  // added latency before every forwarded frame
  double trunc = 0.0;     // P(forward only the first half of a frame)
  double dup = 0.0;       // P(deliver a completion batch twice)
  std::size_t kill_at = 0;  // kill the connection at this frame (0 = never)
  std::uint64_t seed = 1;
};

/// Parses the "k=v,k=v" fault spec; throws util::error on unknown keys,
/// malformed numbers, or probabilities outside [0, 1].
fault_config parse_fault_spec(const std::string& spec);

/// What the decorator actually injected (introspection for tests and the
/// chaos bench log).
struct fault_counters {
  std::size_t frames_seen = 0;
  std::size_t dropped = 0;
  std::size_t delayed = 0;
  std::size_t truncated = 0;
  std::size_t duplicated = 0;
  std::size_t killed = 0;  // 0 or 1
};

class fault_transport : public cloud_transport {
 public:
  fault_transport(std::unique_ptr<cloud_transport> inner, fault_config cfg);
  ~fault_transport() override;

  void start(completion_sink on_complete, failure_sink on_failure) override;
  void send_batch(const std::vector<const request*>& batch,
                  const std::vector<std::uint64_t>& wire_ids,
                  const std::string& model) override;
  void stop() override;
  transport_counters counters() const override;

  fault_counters faults() const;

 private:
  std::unique_ptr<cloud_transport> inner_;
  fault_config config_;
  /// Send-side draws happen on the channel's coalescing thread only (the
  /// send_batch contract); completion-side draws on the inner transport's
  /// reader thread. Separate streams keep both deterministic regardless
  /// of interleaving.
  util::rng send_rng_;
  util::rng recv_rng_;
  std::mutex recv_mutex_;  // recv_rng_ + duplicated counter
  bool killed_ = false;
  mutable std::mutex mutex_;  // fault counters
  fault_counters faults_;
};

}  // namespace appeal::serve
