// The appeal link the cloud_channel sends coalesced batches over.
//
// A cloud_transport moves framed appeal batches toward "the cloud" and
// delivers per-appeal completions back, demuxed by request id. Three
// implementations:
//   - sim_transport: the deterministic simulator (cost-model timing, a
//     local cloud_backend does the scoring) — the default, and what unit
//     tests run against;
//   - socket_transport over a Unix-domain socket (endpoint = socket
//     path) or TCP (endpoint = host:port), speaking the wire.hpp
//     protocol to a tools/cloud_stub (or any server that implements it).
//
// Contract: start() registers the sinks and begins delivery; send_batch()
// is called from one thread only (the channel's coalescing thread) and
// may block while the link is busy — that backpressure is what lets
// appeals pile up and coalesce. Completions arrive on a transport-owned
// thread. on_failure fires at most once, when the link dies with appeals
// possibly outstanding; the channel then answers locally (the edge owns a
// fallback cloud_backend either way).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/request.hpp"
#include "serve/split.hpp"

namespace appeal::collab {
struct cost_model;
}  // namespace appeal::collab

namespace appeal::serve {

class cloud_backend;

enum class transport_kind { sim, uds, tcp };

/// Parses "sim" / "uds" / "tcp"; throws util::error otherwise.
transport_kind parse_transport_kind(const std::string& name);
const char* transport_kind_name(transport_kind kind);

/// Cloud-link configuration, threaded through engine_config /
/// deployment_config as `shard.channel`.
struct link_config {
  /// Multiplier on all *simulated* delays (sim transport only; 0 disables
  /// them entirely for fast tests). Socket transports pay real time.
  double time_scale = 1.0;
  transport_kind transport = transport_kind::sim;
  /// uds: filesystem path of the listening socket; tcp: "host:port".
  std::string endpoint;
  /// Appeals arriving within this window of the first pending appeal are
  /// packed into one framed batch (0 = opportunistic only: whatever
  /// accumulated while the link was busy goes out together).
  double coalesce_window_ms = 0.0;
  /// Hard cap on appeals per framed batch.
  std::size_t max_batch_appeals = 64;
  /// Socket transports only: a peer that accepts appeals but answers
  /// none of them within this budget (also the socket send timeout) is
  /// declared dead and outstanding appeals complete locally, so drain()
  /// and shutdown never wedge on a silent cloud. 0 disables the
  /// watchdog. The simulator ignores this (its completions are
  /// internally guaranteed).
  double response_timeout_ms = 30000.0;

  // --- retry policy (socket transports; the simulator never overloads) ---
  /// Extra wire attempts an `overloaded` appeal gets before it completes
  /// from the local fallback backend. 0 = fall back on first overload.
  std::size_t max_retries = 2;
  /// Exponential backoff base: attempt k waits ~retry_backoff_ms * 2^k,
  /// capped at retry_backoff_max_ms, never below the cloud's
  /// retry-after hint.
  double retry_backoff_ms = 25.0;
  double retry_backoff_max_ms = 2000.0;
  /// Jitter fraction applied to the backoff (delay scales by a uniform
  /// factor in [1-j, 1+j]) from a generator seeded with retry_seed, so
  /// chaos runs stay reproducible.
  double retry_jitter = 0.2;
  std::uint64_t retry_seed = 0x5EEDu;

  // --- circuit breaker (socket transports) ---
  /// Consecutive `overloaded` answers that open the breaker (hard link
  /// failures — send error, EOF, response watchdog — open it
  /// immediately). While open every appeal completes locally; after
  /// breaker_open_ms a half-open probe batch tests the link (reconnecting
  /// if it died) and a wire completion re-closes it.
  std::size_t breaker_threshold = 4;
  double breaker_open_ms = 1000.0;

  /// Deterministic fault-injection spec applied as a fault_transport
  /// decorator around the transport ("" = none). See
  /// transport/fault_transport.hpp for the grammar, e.g.
  /// "drop=0.05,delay_ms=1,dup=0.02,kill_at=40,seed=7".
  std::string fault;

  /// Split-computing appeal policy (see serve/split.hpp): whether appeals
  /// ship raw inputs or intermediate feature maps, and the candidate cut
  /// table of the deployment's canonical cloud model.
  split_config split;
};

/// Wire-level counters every transport keeps (the simulator reports the
/// bytes a real link would have carried, so sim and socket runs are
/// comparable).
struct transport_counters {
  std::size_t batches_sent = 0;
  std::size_t appeals_sent = 0;
  std::size_t bytes_sent = 0;
  std::size_t bytes_received = 0;

  double mean_appeals_per_batch() const {
    return batches_sent == 0 ? 0.0
                             : static_cast<double>(appeals_sent) /
                                   static_cast<double>(batches_sent);
  }
};

class cloud_transport {
 public:
  struct completion {
    std::uint64_t id = 0;        // wire id assigned by the channel
    std::size_t prediction = 0;  // big-model answer (meaningless if expired)
    /// Cloud-side cost: work-queue wait + batch scoring time as the stub
    /// measured it (0 for the simulator, whose cloud time is modeled).
    double cloud_ms = 0.0;
    /// The cloud_ms total split into queue wait and batched scoring
    /// (wire v3; zero from a v2 peer or the simulator). Cloud-stamped
    /// durations — trace spans use them without cross-clock sync.
    double cloud_queue_ms = 0.0;
    double cloud_score_ms = 0.0;
    /// The cloud shed this appeal because its deadline was already blown
    /// when a scorer worker reached it.
    bool expired = false;
    /// The cloud refused this appeal without scoring (wire v4: full work
    /// queue or projected deadline miss); the channel retries it after
    /// retry_after_ms or completes it locally.
    bool overloaded = false;
    double retry_after_ms = 0.0;
    /// The cloud could not score this appeal as sent (wire v5: unknown
    /// split cut id or a feature shape that matches no cut). The channel
    /// completes it locally and stops shipping that cut.
    bool rejected = false;
  };
  using completion_sink = std::function<void(std::vector<completion>&&)>;
  using failure_sink = std::function<void()>;

  virtual ~cloud_transport() = default;

  /// Begins delivery. Called exactly once, before the first send_batch.
  virtual void start(completion_sink on_complete, failure_sink on_failure) = 0;

  /// Ships one coalesced batch; `wire_ids` is index-aligned with `batch`
  /// and carries the channel-assigned demux ids. The requests stay owned
  /// by the caller's in-flight table (registered before the send, so a
  /// completion racing back mid-send always finds its entry). May block
  /// while the link is busy. Throws util::error when the link is down
  /// (the caller falls back to local completion).
  virtual void send_batch(const std::vector<const request*>& batch,
                          const std::vector<std::uint64_t>& wire_ids,
                          const std::string& model) = 0;

  /// Stops delivering completions and joins transport threads. Idempotent.
  virtual void stop() = 0;

  virtual transport_counters counters() const = 0;
};

/// Builds the transport `cfg` names. `fallback` is the local cloud
/// backend (the simulator scores with it; socket transports only use it
/// indirectly, via the channel's failure path). The cost model drives the
/// simulator's timing and is ignored by socket transports.
///
/// `fault_salt` deterministically re-seeds the fault decorator per link
/// incarnation (the channel passes its reconnect epoch). Without it a
/// rebuilt wrapper replays the exact fault sequence of the one it
/// replaces — and a seed whose first draw says "drop" would then eat the
/// half-open probe after every reconnect, pinning the breaker open
/// forever. Salt 0 (the first link) keeps the user's seed untouched.
std::unique_ptr<cloud_transport> make_cloud_transport(
    const link_config& cfg, cloud_backend& fallback,
    const collab::cost_model& link, std::uint64_t fault_salt = 0);

}  // namespace appeal::serve
