// Deterministic in-process appeal link (the PR-1 simulator, now one
// cloud_transport among three).
//
// Timing comes from the collab::cost_model latency coefficients:
//   transmit = encoded_frame_kb * comm_ms_per_kb  (serialized; the ACTUAL
//              wire size of the batch, so a split appeal shipping a small
//              feature map pays proportionally less uplink than one
//              shipping the raw input — without this the cost model could
//              never prefer a cut in simulation)
//   overlap  = comm_round_trip_ms + cloud_mflops/cloud_gflops (pipelined)
// send_batch() *blocks until the link is free* — that occupancy is the
// backpressure that makes the channel's coalescing observable even in
// simulation — then schedules the whole batch's completions one overlap
// after its transmission ends. Scoring runs the local cloud_backend
// inline on the sending thread (off every lock). `time_scale` scales all
// delays; 0 turns the simulator into an immediate echo for unit tests.
//
// Byte counters report what the wire encoding of each batch would have
// occupied, so sim and socket runs expose comparable link statistics.
#pragma once

#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

#include "collab/cost_model.hpp"
#include "serve/backends.hpp"
#include "serve/transport/cloud_transport.hpp"

namespace appeal::serve {

class sim_transport : public cloud_transport {
 public:
  sim_transport(cloud_backend& backend, const collab::cost_model& link,
                double time_scale);
  ~sim_transport() override;

  void start(completion_sink on_complete, failure_sink on_failure) override;
  void send_batch(const std::vector<const request*>& batch,
                  const std::vector<std::uint64_t>& wire_ids,
                  const std::string& model) override;
  void stop() override;
  transport_counters counters() const override;

 private:
  struct scheduled {
    std::vector<completion> batch;
    std::chrono::steady_clock::time_point due;
  };

  void run();

  cloud_backend& backend_;
  double comm_ms_per_kb_;  // uplink cost per encoded KiB (serialized)
  double overlap_ms_;      // propagation + cloud compute (pipelined)
  double time_scale_;
  completion_sink on_complete_;

  // Owned by the single send_batch caller; no lock needed.
  std::chrono::steady_clock::time_point link_free_at_;

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  // Due times are FIFO (constant overlap on a monotone transmit end), so
  // a plain queue is a valid timer wheel.
  std::queue<scheduled> pending_;
  transport_counters counters_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread timer_;
};

}  // namespace appeal::serve
