#include "serve/transport/fault_transport.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  APPEAL_CHECK(end != nullptr && *end == '\0' && !value.empty(),
               "fault spec: '" + key + "' wants a number, got '" + value +
                   "'");
  return v;
}

double parse_probability(const std::string& key, const std::string& value) {
  const double p = parse_double(key, value);
  APPEAL_CHECK(p >= 0.0 && p <= 1.0,
               "fault spec: '" + key + "' must be a probability in [0, 1]");
  return p;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  APPEAL_CHECK(v >= 0.0, "fault spec: '" + key + "' must be non-negative");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

fault_config parse_fault_spec(const std::string& spec) {
  fault_config cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    APPEAL_CHECK(eq != std::string::npos,
                 "fault spec entry '" + entry + "' is not key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "drop") {
      cfg.drop = parse_probability(key, value);
    } else if (key == "delay_ms") {
      cfg.delay_ms = parse_double(key, value);
      APPEAL_CHECK(cfg.delay_ms >= 0.0, "fault spec: delay_ms must be >= 0");
    } else if (key == "trunc") {
      cfg.trunc = parse_probability(key, value);
    } else if (key == "dup") {
      cfg.dup = parse_probability(key, value);
    } else if (key == "kill_at") {
      cfg.kill_at = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      cfg.seed = parse_u64(key, value);
    } else {
      throw util::error("fault spec: unknown key '" + key +
                        "' (want drop|delay_ms|trunc|dup|kill_at|seed)");
    }
  }
  return cfg;
}

fault_transport::fault_transport(std::unique_ptr<cloud_transport> inner,
                                 fault_config cfg)
    : inner_(std::move(inner)),
      config_(cfg),
      send_rng_(cfg.seed),
      recv_rng_(cfg.seed ^ 0x9E3779B97F4A7C15ULL) {
  APPEAL_CHECK(inner_ != nullptr, "fault_transport needs an inner transport");
}

fault_transport::~fault_transport() { stop(); }

void fault_transport::start(completion_sink on_complete,
                            failure_sink on_failure) {
  APPEAL_CHECK(on_complete != nullptr && on_failure != nullptr,
               "fault_transport needs completion and failure sinks");
  inner_->start(
      [this, sink = std::move(on_complete)](
          std::vector<completion>&& done) {
        bool duplicate = false;
        if (config_.dup > 0.0) {
          std::lock_guard<std::mutex> lock(recv_mutex_);
          duplicate = recv_rng_.bernoulli(config_.dup);
        }
        if (duplicate) {
          {
            std::lock_guard<std::mutex> lock(mutex_);
            faults_.duplicated += 1;
          }
          std::vector<completion> copy = done;
          sink(std::move(copy));
        }
        sink(std::move(done));
      },
      std::move(on_failure));
}

void fault_transport::send_batch(const std::vector<const request*>& batch,
                                 const std::vector<std::uint64_t>& wire_ids,
                                 const std::string& model) {
  std::size_t frame;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    frame = ++faults_.frames_seen;
    if (killed_) {
      throw util::error("fault_transport: connection killed by kill_at");
    }
  }
  if (config_.kill_at > 0 && frame >= config_.kill_at) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      killed_ = true;
      faults_.killed = 1;
    }
    APPEAL_LOG_WARN("fault_transport")
        << "killing the connection" << util::kv("frame", frame);
    // Like a peer reset mid-write: the link is gone, the send fails. The
    // inner stop() suppresses its own on_failure (it looks like a local
    // shutdown), so the thrown error is the one signal the channel gets.
    inner_->stop();
    throw util::error("fault_transport: connection killed at frame " +
                      std::to_string(frame));
  }
  if (config_.delay_ms > 0.0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      faults_.delayed += 1;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(config_.delay_ms));
  }
  if (config_.drop > 0.0 && send_rng_.bernoulli(config_.drop)) {
    std::lock_guard<std::mutex> lock(mutex_);
    faults_.dropped += 1;
    return;  // the frame vanishes; the watchdog owns the fallout
  }
  if (config_.trunc > 0.0 && batch.size() > 1 &&
      send_rng_.bernoulli(config_.trunc)) {
    const std::size_t keep = batch.size() / 2;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      faults_.truncated += 1;
    }
    const std::vector<const request*> head(batch.begin(),
                                           batch.begin() + keep);
    const std::vector<std::uint64_t> head_ids(wire_ids.begin(),
                                              wire_ids.begin() + keep);
    inner_->send_batch(head, head_ids, model);
    return;  // the tail goes unanswered, like a frame torn mid-flight
  }
  inner_->send_batch(batch, wire_ids, model);
}

void fault_transport::stop() { inner_->stop(); }

transport_counters fault_transport::counters() const {
  return inner_->counters();
}

fault_counters fault_transport::faults() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

}  // namespace appeal::serve
