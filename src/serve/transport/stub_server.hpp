// The cloud side of the appeal link: a listening server that speaks the
// wire.hpp protocol and schedules appeals like a real cloud.
//
// Structure (one stub process serves any number of edge deployments):
//
//   connection threads ──decode──▶ cloud_work_queue ──pop──▶ scorer
//   (one per client)               (priority lanes,          workers
//        ▲                          tightest deadline        (--workers)
//        │                          first within a lane)        │
//        └──────────── response frames, routed by owner ────────┘
//
// Connection threads only decode and enqueue; a configurable pool of
// scorer workers forms cloud batches from the shared queue (interactive
// appeals pop ahead of batch-class ones; within a class, the appeal with
// the least remaining deadline budget runs first, deadline-free appeals
// after all deadlined ones in arrival order). A worker sheds any appeal
// whose deadline is already blown when it reaches the front — the client
// gets an `expired` response instead of a stale prediction — and scores
// the survivors as ONE batched inference, so a network scorer pays one
// im2col + GEMM per layer for the whole cloud batch. Each response
// carries cloud_ms = work-queue wait + scoring time, the honest number
// the edge holds against its cost model. The queue is bounded
// (max_queue_depth, with a separate batch-lane budget so background
// traffic cannot starve interactive appeals of queue space): when appeals
// outrun the scorer pool, arrivals shed at admission with an immediate
// `overloaded` response (wire v4) carrying a retry-after hint derived
// from the queue's own drain-rate estimate — distinct from `expired`,
// which means a deadline died *inside* the queue. The same drain-rate
// estimate powers projected-deadline-miss shedding: an arrival whose
// deadline cannot survive the current queue wait is refused up front
// instead of burning queue space on a guaranteed expiry.
//
// The scorer is pluggable, from an echo lambda to the real big network
// (serve/cloud_model.hpp builds one from serialized weights). Workers get
// their own scorer instance via the factory — network forwards use
// thread-local workspaces but are not otherwise synchronized, exactly
// like the engine's per-worker edge backends.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/transport/cloud_transport.hpp"
#include "serve/transport/socket_util.hpp"
#include "serve/transport/wire.hpp"

namespace appeal::serve {

struct stub_server_config {
  transport_kind kind = transport_kind::uds;  // uds or tcp
  /// uds: socket path; tcp: "host:port" ("127.0.0.1:0" picks a free
  /// port — read it back with tcp_port()).
  std::string endpoint;
  /// Scorer worker pool size (each worker gets its own scorer instance).
  std::size_t workers = 1;
  /// Appeals a worker pulls into one cloud batch (batched inference for
  /// network scorers; an upper bound, not a wait — whatever is queued
  /// goes, the edge channel already coalesced the burst).
  std::size_t max_cloud_batch = 16;
  /// Shed appeals whose deadline is blown before a worker reaches them
  /// (responded as wire::response_status::expired without scoring).
  bool shed_expired = true;
  /// Work-queue capacity — the stub's admission bound. When appeals
  /// arrive faster than the scorer pool drains them, arrivals beyond
  /// this depth are shed immediately with an `overloaded` response
  /// (carrying a retry-after hint) instead of buffering without bound
  /// (each queued appeal holds its decoded tensor). 0 = unbounded.
  std::size_t max_queue_depth = 4096;
  /// Depth budget of the batch-priority lane (0 = only the shared
  /// max_queue_depth applies). A lower budget keeps background traffic
  /// from filling the whole queue ahead of interactive appeals.
  std::size_t max_batch_queue_depth = 0;
  /// Shed arrivals whose deadline is projected to die in the queue: when
  /// the queue's drain-rate estimate says the wait already exceeds the
  /// appeal's remaining deadline, answer `overloaded` up front instead
  /// of queueing a guaranteed expiry.
  bool shed_projected = true;
};

struct stub_server_counters {
  std::size_t connections = 0;
  std::size_t batches = 0;        // appeal frames received
  std::size_t appeals = 0;        // appeals received
  std::size_t scored = 0;         // appeals answered with a prediction
  std::size_t expired = 0;        // appeals shed (deadline blown in queue)
  std::size_t overloaded = 0;     // appeals shed at the full work queue
  std::size_t projected = 0;      // appeals shed on a projected deadline miss
  std::size_t cloud_batches = 0;  // batches formed by the scorer workers
  std::size_t bytes_received = 0;
  std::size_t bytes_sent = 0;
};

/// Deadline/priority-ordered queue between connection threads and the
/// scorer workers. Pop order: interactive lane strictly ahead of the
/// batch lane; within a lane, earliest absolute deadline first, appeals
/// without a deadline after every deadlined one, FIFO among equals.
/// Standalone so the scheduling order is unit-testable without sockets.
class cloud_work_queue {
 public:
  /// `capacity` bounds the queue (pushes beyond it are refused so the
  /// caller can shed); 0 = unbounded. `batch_capacity` additionally
  /// bounds the batch-priority lane. `shed_projected` refuses arrivals
  /// whose deadline the drain-rate estimate says cannot survive the
  /// queue wait.
  explicit cloud_work_queue(std::size_t capacity = 0,
                            std::size_t batch_capacity = 0,
                            bool shed_projected = false)
      : capacity_(capacity),
        batch_capacity_(batch_capacity),
        shed_projected_(shed_projected) {}

  struct item {
    wire::appeal_record record;
    /// When the appeal entered the queue (cloud_ms accounting).
    std::chrono::steady_clock::time_point enqueued;
    /// Absolute shed deadline (enqueued + record.deadline_ms);
    /// time_point::max() when the appeal carries none.
    std::chrono::steady_clock::time_point deadline;
    /// Token of the connection that owns the appeal (responses route
    /// back through it); opaque to the queue.
    std::uint64_t owner = 0;
  };

  /// Why a push was refused (ok = it wasn't). `full` covers both the
  /// shared capacity and the batch-lane budget; `projected_miss` means
  /// the drain-rate estimate already exceeds the appeal's deadline. Both
  /// are overload answers — the caller responds `overloaded` with the
  /// current wait estimate as the retry-after hint.
  enum class admit : std::uint8_t { ok, full, projected_miss, closed };

  /// Enqueues one decoded appeal, stamping its arrival time and the
  /// absolute deadline from record.deadline_ms (< 0 = none). Never
  /// blocks. On any non-ok verdict the record is untouched apart from
  /// the move and the caller sheds (or is shutting down, for `closed`).
  admit push(wire::appeal_record&& record, std::uint64_t owner);

  /// Blocks until at least one item is available (or the queue is closed
  /// and empty — returns an empty vector, the worker should exit), then
  /// pops up to `max_items` in scheduling order without waiting for
  /// more.
  std::vector<item> pop_batch(std::size_t max_items);

  /// Wakes all waiting workers; subsequent pushes are refused. By
  /// default pop_batch drains the remainder before reporting closed;
  /// `discard` empties the lanes instead (shutdown: every client is
  /// gone, scoring the backlog would be pure waste).
  void close(bool discard = false);

  std::size_t size() const;

  /// Throughput view the overload answers are derived from: current
  /// depth, the EMA of per-item drain time (ms; 0 until two pops have
  /// happened), and total items drained.
  struct queue_stats {
    std::size_t depth = 0;
    double ms_per_item = 0.0;
    std::size_t drained = 0;
  };
  queue_stats stats() const;

  /// Estimated wait of an arrival admitted now: depth × the drain-rate
  /// EMA (0 until the estimate warms up). This is the retry-after hint
  /// on `overloaded` responses.
  double estimated_wait_ms() const;

 private:
  using lane = std::map<
      std::pair<std::chrono::steady_clock::time_point, std::uint64_t>, item>;

  const std::size_t capacity_;
  const std::size_t batch_capacity_;
  const bool shed_projected_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  lane interactive_;
  lane batch_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
  /// Drain-rate EMA: ms between successive pop_batch calls divided by
  /// the items each popped, smoothed. Fed under mutex_ by every worker,
  /// so it measures the pool's aggregate throughput. Intervals where a
  /// worker found the queue empty (idle, not draining) re-arm the clock
  /// instead of feeding the EMA — idle time is not drain time, and
  /// inflated hints would lengthen retry backoffs, which lengthens the
  /// idle gaps in turn.
  double ema_ms_per_item_ = 0.0;
  std::chrono::steady_clock::time_point last_pop_{};
  bool have_last_pop_ = false;
  std::size_t drained_ = 0;
};

/// Sentinel a scorer returns for an appeal it cannot score as sent
/// (unknown split cut id, feature shape matching no cut). The stub
/// answers such appeals with response_status::rejected instead of a
/// prediction, and the edge completes them from its local copy.
inline constexpr std::size_t kRejectedPrediction =
    static_cast<std::size_t>(-1);

class stub_server {
 public:
  /// Prediction for one appealed request.
  using scorer_fn = std::function<std::size_t(const wire::appeal_record&)>;
  /// Batched scorer: one prediction per appeal, index-aligned.
  using batch_scorer_fn = std::function<std::vector<std::size_t>(
      const std::vector<const wire::appeal_record*>&)>;
  /// Builds one batch scorer per worker (stateful scorers — a network
  /// with its inference caches — must not be shared across workers).
  /// Invoked once per worker from start(), on the caller's thread, so a
  /// factory that throws (missing weights, architecture mismatch) fails
  /// start() cleanly.
  using scorer_factory = std::function<batch_scorer_fn(std::size_t worker)>;

  /// Stateless per-appeal scorer, shared by every worker.
  stub_server(const stub_server_config& cfg, scorer_fn scorer);
  /// One scorer instance per worker (network scorers).
  stub_server(const stub_server_config& cfg, scorer_factory factory);
  ~stub_server();

  stub_server(const stub_server&) = delete;
  stub_server& operator=(const stub_server&) = delete;

  /// Binds, listens, starts the scorer workers and the acceptor. Throws
  /// util::error when the endpoint cannot be bound.
  void start();

  /// Stops accepting, closes every live connection, drains the work
  /// queue, joins all threads. Idempotent; also invoked by the
  /// destructor.
  void stop();

  /// Actual TCP port after start() (meaningful for tcp endpoints only).
  std::uint16_t tcp_port() const;

  stub_server_counters counters() const;

 private:
  struct connection {
    std::uint64_t id = 0;
    net::fd socket;
    std::thread thread;
    std::mutex write_mutex;  // response frames from multiple workers
    std::atomic<bool> done{false};
    /// Highest wire version this peer has spoken (from its appeal frame
    /// headers). Responses go out at the same version, so a v2 edge
    /// never sees v3 response fields.
    std::atomic<std::uint8_t> wire_version{wire::kVersionV2};
  };

  void accept_loop();
  void serve_connection(connection& conn);
  void scorer_loop(const batch_scorer_fn& score);
  /// Frames and writes one response batch to `owner`'s connection (if it
  /// is still alive); accounts bytes_sent. Write errors drop the
  /// responses — the client is gone and its channel falls back locally.
  void write_responses(std::uint64_t owner,
                       const std::vector<wire::response_record>& responses);
  /// Joins and frees connections whose client hung up (called from the
  /// accept loop, so a long-lived stub does not leak one fd + thread per
  /// past client). Caller must not hold mutex_.
  void reap_finished_connections();

  stub_server_config config_;  // declared before queue_ (capacity source)
  scorer_factory scorer_factory_;
  net::fd listener_;
  std::thread acceptor_;
  std::vector<std::thread> scorers_;
  cloud_work_queue queue_{config_.max_queue_depth,
                          config_.max_batch_queue_depth,
                          config_.shed_projected};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::uint64_t next_connection_id_ = 0;

  mutable std::mutex mutex_;  // connections_ + counters_
  /// Live connections by owner token — the routing table workers answer
  /// through (a reaped or dead connection simply is not found and the
  /// responses are dropped) and the only container, so registration,
  /// reaping, and shutdown cannot drift apart.
  std::unordered_map<std::uint64_t, std::shared_ptr<connection>> connections_;
  stub_server_counters counters_;

  /// default_registry() instruments mirroring the counters above (plus
  /// the live work-queue depth), resolved once at construction so the
  /// hot paths pay one relaxed fetch_add each.
  obs::counter& metric_appeals_;
  obs::counter& metric_scored_;
  obs::counter& metric_expired_;
  obs::counter& metric_overloaded_;
  obs::counter& metric_projected_;
  obs::gauge& metric_queue_depth_;
};

}  // namespace appeal::serve
