// The cloud side of the appeal link: a listening server that speaks the
// wire.hpp protocol.
//
// stub_server accepts any number of connections (one per deployment
// channel — a bench run opens a fresh connection per server instance,
// and several deployments may talk to one stub concurrently), reads
// framed appeal batches, scores every appeal with the configured scorer,
// and writes one response batch per appeal batch. tools/cloud_stub wraps
// this in a standalone binary; the transport tests run it in-process on
// a loopback socket.
//
// The scorer is a plain function over the decoded appeal record, so the
// stub can host anything from an echo to the real big-head network
// (network_cloud_backend wrapped in a lambda).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/transport/cloud_transport.hpp"
#include "serve/transport/socket_util.hpp"
#include "serve/transport/wire.hpp"

namespace appeal::serve {

struct stub_server_config {
  transport_kind kind = transport_kind::uds;  // uds or tcp
  /// uds: socket path; tcp: "host:port" ("127.0.0.1:0" picks a free
  /// port — read it back with tcp_port()).
  std::string endpoint;
};

struct stub_server_counters {
  std::size_t connections = 0;
  std::size_t batches = 0;
  std::size_t appeals = 0;
  std::size_t bytes_received = 0;
  std::size_t bytes_sent = 0;
};

class stub_server {
 public:
  /// Prediction for one appealed request.
  using scorer_fn = std::function<std::size_t(const wire::appeal_record&)>;

  stub_server(const stub_server_config& cfg, scorer_fn scorer);
  ~stub_server();

  stub_server(const stub_server&) = delete;
  stub_server& operator=(const stub_server&) = delete;

  /// Binds, listens, and starts accepting. Throws util::error when the
  /// endpoint cannot be bound.
  void start();

  /// Stops accepting, closes every live connection, joins all threads.
  /// Idempotent; also invoked by the destructor.
  void stop();

  /// Actual TCP port after start() (meaningful for tcp endpoints only).
  std::uint16_t tcp_port() const;

  stub_server_counters counters() const;

 private:
  struct connection {
    net::fd socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(connection& conn);
  /// Joins and frees connections whose client hung up (called from the
  /// accept loop, so a long-lived stub does not leak one fd + thread per
  /// past client). Caller must not hold mutex_.
  void reap_finished_connections();

  stub_server_config config_;
  scorer_fn scorer_;
  net::fd listener_;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex mutex_;  // connections_ + counters_
  std::vector<std::unique_ptr<connection>> connections_;
  stub_server_counters counters_;
};

}  // namespace appeal::serve
