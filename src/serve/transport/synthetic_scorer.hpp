// Deterministic per-key synthetic "big model".
//
// bench_serving's replay workload and the out-of-process cloud_stub must
// agree on the cloud's answer for every request without sharing any
// state, so the big model's prediction is a pure function of
// (key, label, seed): a splitmix64 hash draws the per-input coin that
// decides whether the big model is right. Identical inputs produce
// identical tables in the bench process (which builds the offline replay
// table and the simulator's cloud backend from it) and in the stub
// (which answers appeals over the socket) — the acceptance check "uds
// accuracy == sim accuracy" is exact, not statistical.
#pragma once

#include <cstddef>
#include <cstdint>

namespace appeal::serve::transport {

/// Big-model prediction for one input: correct (`label`) with
/// probability `accuracy`, otherwise a fixed wrong class (label + 2, the
/// same convention the offline test fixtures use). Unlabeled inputs
/// (label >= num_classes, e.g. request::no_label) hash onto a stable
/// arbitrary class.
std::size_t synthetic_big_prediction(std::uint64_t key, std::size_t label,
                                     std::size_t num_classes,
                                     std::uint64_t seed,
                                     double accuracy = 0.97);

}  // namespace appeal::serve::transport
