// Length-prefixed wire protocol of the edge→cloud appeal link.
//
// Every message is one frame:
//
//   ┌──────────┬─────────┬──────┬───────┬───────────────┬─────────────┐
//   │ magic u32│ ver u8  │ type │ count │ payload_bytes │   payload   │
//   │ "APL1"   │ (2..5)  │  u8  │  u16  │      u32      │  (records)  │
//   └──────────┴─────────┴──────┴───────┴───────────────┴─────────────┘
//     12-byte header, all integers little-endian, floats IEEE-754.
//
// An appeal_batch payload holds `count` appeal records (request id, key,
// label, priority class, remaining deadline, deployment name, tensor
// shape + float32 payload); a response_batch holds `count` response
// records (request id, prediction, status, stub-side queue-wait +
// compute time). Request ids are the demux key: the response side may
// reorder or split batches and the channel still completes the right
// appeal.
//
// Version negotiation is per-frame and backward compatible: a v4 peer
// decodes v2/v3 frames (the splitter accepts all three and stamps the
// version on the frame), and the stub replies to each connection at the
// version it spoke, so an old edge never sees fields it can't parse.
// v3 adds
//   - appeal records: flags bit0 ("traced") + an optional trace_id u64
//     right after deadline_ms, propagating sampled trace spans across
//     the link;
//   - response records: cloud_queue_ms + cloud_score_ms f64s after
//     cloud_ms, splitting the cloud-stamped cost into work-queue wait
//     and batched scoring for per-stage latency attribution.
// v4 adds
//   - response_status::overloaded: the cloud refused the appeal without
//     scoring it (full work queue or a projected deadline miss), plus a
//     retry_after_ms f64 hint after cloud_score_ms telling the edge how
//     long the queue-wait estimate says to back off. Encoding an
//     overloaded response at v2/v3 downgrades the status to `expired` —
//     the strongest "don't wait for me" an old edge understands.
// v5 adds
//   - split-computing appeals: flags bit1 ("split") + a cut_id u32 right
//     after the optional trace_id. The tensor payload is then the
//     intermediate feature map at that cut of the canonical cloud model
//     (cut ids are 1-based indices into its nn::sequential cut table),
//     not the raw input; the cloud scores only the suffix. Encoding a
//     split appeal at v2-v4 falls back to shipping the raw input — an
//     old cloud transparently recomputes in full, same answers.
//   - response_status::rejected: the cloud could not score the appeal as
//     sent (unknown cut id / feature shape); the edge answers it from
//     its local copy and stops shipping that cut. Downgrades to
//     `expired` at v2-v4.
//
// Decoding is defensive: a frame_splitter accumulates an arbitrary byte
// stream (torn reads hand it any prefix) and yields only complete,
// well-formed frames; bad magic/version/type, a payload length above
// kMaxFrameBytes, and any record running past the payload end all throw
// util::error instead of reading out of bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/request.hpp"
#include "tensor/tensor.hpp"

namespace appeal::serve::wire {

inline constexpr std::uint32_t kMagic = 0x314C5041;  // "APL1" little-endian
/// v2: response records carry a status byte (deadline-shed appeals come
/// back as `expired` instead of a made-up prediction).
inline constexpr std::uint8_t kVersionV2 = 2;
/// v3: optional trace_id on appeals, cloud-stamped queue/score split on
/// responses.
inline constexpr std::uint8_t kVersionV3 = 3;
/// v4: `overloaded` response status + retry_after_ms hint.
inline constexpr std::uint8_t kVersionV4 = 4;
/// v5 (current): split-computing appeals (cut_id + feature-map payload)
/// and the `rejected` response status. Decoders accept v2 through v5.
inline constexpr std::uint8_t kVersion = 5;
inline constexpr std::size_t kHeaderBytes = 12;
/// Upper bound on one frame's payload; a peer announcing more is treated
/// as corrupt (protects the receiver from attacker/garbage allocations).
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;  // 64 MiB

enum class frame_type : std::uint8_t {
  appeal_batch = 1,
  response_batch = 2,
};

/// One appealed request as it crosses the wire (decode side owns its
/// tensor; the encode side reads straight out of the serve::request).
struct appeal_record {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::uint64_t label = request::no_label;
  priority_class priority = priority_class::interactive;
  /// Remaining deadline budget at send time (ms); < 0 means "none".
  double deadline_ms = -1.0;
  /// Trace span id riding the appeal (wire v3, flags bit0); 0 = unsampled.
  std::uint64_t trace_id = 0;
  /// Split-computing cut id (wire v5, flags bit1); 0 = raw-input appeal.
  /// When > 0, `input` holds the feature map at that cut of the canonical
  /// cloud model and the receiver scores only the suffix.
  std::uint32_t split_cut = 0;
  std::string model;  // deployment name
  tensor input;       // may be empty (replay workloads ship no pixels)
};

/// Non-owning encode-side view of an appeal (avoids copying the tensor
/// out of the in-flight request just to frame it).
struct appeal_view {
  std::uint64_t id = 0;
  std::uint64_t key = 0;
  std::uint64_t label = request::no_label;
  priority_class priority = priority_class::interactive;
  double deadline_ms = -1.0;
  std::uint64_t trace_id = 0;  // 0 = unsampled (not encoded, even on v3)
  /// Split-computing appeal (wire v5): ship `*feature` tagged with
  /// `split_cut` instead of the input. Encoding at v2-v4 — or with a null
  /// or empty feature — falls back to the raw input, so an old peer
  /// receives an appeal it can score by full recompute.
  std::uint32_t split_cut = 0;
  const tensor* feature = nullptr;
  std::string_view model;
  const tensor* input = nullptr;  // nullptr encodes as an empty tensor
};

/// How the cloud disposed of one appeal. `expired` means the appeal's
/// remaining deadline was already blown when a cloud worker reached it:
/// the cloud shed it without scoring, and `prediction` is meaningless.
/// `overloaded` (wire v4) means the cloud refused the appeal without
/// scoring — full work queue or a projected deadline miss — and the edge
/// should back off (retry after retry_after_ms, or answer locally).
/// `rejected` (wire v5) means the cloud could not score the appeal as
/// sent — unknown split cut id or a feature shape matching no cut — and
/// the edge should answer it locally (no retry can fix a bad cut).
enum class response_status : std::uint8_t {
  ok = 0,
  expired = 1,
  overloaded = 2,
  rejected = 3,
};

struct response_record {
  std::uint64_t id = 0;
  std::uint64_t prediction = 0;
  response_status status = response_status::ok;
  /// Stub-side cost of the appeal: work-queue wait + batch scoring time.
  /// The client compares this against its cost model's cloud term.
  double cloud_ms = 0.0;
  /// wire v3: the cloud_ms total split into work-queue wait and batched
  /// scoring, stamped on the cloud's clock. Zero when decoded from v2.
  double cloud_queue_ms = 0.0;
  double cloud_score_ms = 0.0;
  /// wire v4: how long the cloud suggests the edge wait before retrying
  /// an `overloaded` appeal (its queue-wait estimate); 0 on other
  /// statuses and when decoded from v2/v3.
  double retry_after_ms = 0.0;
};

/// One complete, validated frame (header parsed, payload bounds known).
struct frame {
  frame_type type = frame_type::appeal_batch;
  /// Protocol version the sender spoke (2 through 5); decoders branch on
  /// it and a server replies at the same version.
  std::uint8_t version = kVersion;
  std::uint16_t count = 0;
  std::vector<std::uint8_t> payload;
};

/// Exact wire size of one appeal record at `version` (used by the
/// simulator to count the bytes a real link would carry without encoding
/// anything).
std::size_t appeal_wire_bytes(const appeal_view& a,
                              std::uint8_t version = kVersion);

/// Exact wire size of one v4 response record (id + prediction + status +
/// cloud_ms + queue/score split + retry_after); the simulator uses it to
/// count equivalent downlink bytes.
inline constexpr std::size_t kResponseRecordBytes = 8 + 8 + 1 + 8 + 8 + 8 + 8;

/// Frame encoders. `version` selects the wire dialect (kVersionV2 for
/// talking to old peers and crafting compat-test frames).
std::vector<std::uint8_t> encode_appeal_batch(
    const std::vector<appeal_view>& batch, std::uint8_t version = kVersion);
std::vector<std::uint8_t> encode_response_batch(
    const std::vector<response_record>& batch,
    std::uint8_t version = kVersion);

/// Decodes the records of a validated frame. Throws util::error when the
/// frame type does not match or a record overruns the payload.
std::vector<appeal_record> decode_appeal_batch(const frame& f);
std::vector<response_record> decode_response_batch(const frame& f);

/// Incremental frame assembly over an arbitrary byte stream. feed() any
/// chunking (a socket read, a single byte); next() yields complete
/// frames in order and std::nullopt while one is still partial. Malformed
/// input (bad magic/version/type, oversized payload) throws util::error
/// — the stream is unrecoverable at that point and the caller should
/// drop the connection.
class frame_splitter {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  std::optional<frame> next();

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace appeal::serve::wire
