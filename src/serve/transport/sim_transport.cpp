#include "serve/transport/sim_transport.hpp"

#include "serve/transport/wire.hpp"
#include "util/error.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

clock::duration scaled_ms(double ms, double scale) {
  return std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::milli>(ms * scale));
}

}  // namespace

sim_transport::sim_transport(cloud_backend& backend,
                             const collab::cost_model& link,
                             double time_scale)
    : backend_(backend),
      comm_ms_per_kb_(link.comm_ms_per_kb),
      // Propagation + cloud compute = the cost model's offload latency
      // minus the transmit share (L(0) - L(1) is the full offload term).
      overlap_ms_(link.overall_latency_ms(0.0) - link.overall_latency_ms(1.0) -
                  link.input_kb * link.comm_ms_per_kb),
      time_scale_(time_scale) {
  APPEAL_CHECK(time_scale_ >= 0.0, "time_scale must be non-negative");
  link_free_at_ = clock::now();
}

sim_transport::~sim_transport() { stop(); }

void sim_transport::start(completion_sink on_complete, failure_sink) {
  APPEAL_CHECK(on_complete != nullptr, "sim_transport needs a completion sink");
  APPEAL_CHECK(!started_, "sim_transport started twice");
  started_ = true;
  on_complete_ = std::move(on_complete);
  timer_ = std::thread([this] { run(); });
}

void sim_transport::send_batch(const std::vector<const request*>& batch,
                               const std::vector<std::uint64_t>& wire_ids,
                               const std::string& model) {
  APPEAL_CHECK(started_, "send_batch before start()");
  APPEAL_CHECK(batch.size() == wire_ids.size(),
               "one wire id per appeal required");
  // Occupancy backpressure: wait for the radio, then hold it for the
  // batch's serialized transmission — timed from the ACTUAL encoded frame
  // size, so a split appeal shipping a small feature map pays
  // proportionally less uplink than one shipping the raw input.
  const clock::time_point now = clock::now();
  const clock::time_point send_start = std::max(now, link_free_at_);
  if (send_start > now) std::this_thread::sleep_until(send_start);

  std::size_t bytes = wire::kHeaderBytes;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    wire::appeal_view v;
    v.id = wire_ids[i];
    v.key = batch[i]->key;
    v.label = batch[i]->label;
    v.split_cut = batch[i]->split_cut;
    v.feature = &batch[i]->feature;
    v.model = model;
    v.input = &batch[i]->input;
    bytes += wire::appeal_wire_bytes(v);
  }
  const clock::time_point send_end =
      send_start + scaled_ms(
                       comm_ms_per_kb_ * static_cast<double>(bytes) / 1024.0,
                       time_scale_);
  link_free_at_ = send_end;

  scheduled s;
  s.due = send_end + scaled_ms(overlap_ms_, time_scale_);
  s.batch.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // The local big model scores inline, off every lock (it may be
    // arbitrarily expensive). Split appeals score by full recompute from
    // the raw input the request still carries — the backend is the same
    // bit-identical model, so the answer matches the suffix path.
    s.batch.push_back(completion{wire_ids[i], backend_.infer(*batch[i])});
  }

  std::lock_guard<std::mutex> lock(mutex_);
  counters_.batches_sent += 1;
  counters_.appeals_sent += batch.size();
  counters_.bytes_sent += bytes;
  counters_.bytes_received +=
      wire::kHeaderBytes + wire::kResponseRecordBytes * batch.size();
  pending_.push(std::move(s));
  wake_.notify_all();
}

void sim_transport::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  wake_.notify_all();
  if (timer_.joinable()) timer_.join();
}

transport_counters sim_transport::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void sim_transport::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!pending_.empty()) {
      const clock::time_point due = pending_.front().due;
      if (clock::now() < due) {
        wake_.wait_until(lock, due);
        continue;  // re-check: new work or stop may have arrived
      }
      scheduled s = std::move(pending_.front());
      pending_.pop();
      lock.unlock();
      on_complete_(std::move(s.batch));
      lock.lock();
      continue;
    }
    if (stopping_) return;
    wake_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
  }
}

}  // namespace appeal::serve
