// Forwarding header: the POSIX socket helpers moved to util/net.hpp so
// the observability exporters (obs/exporter.hpp) can reuse them without
// depending on the serve layer. Existing transport code keeps spelling
// `net::fd` etc. through this alias.
#pragma once

#include "util/net.hpp"

namespace appeal::serve {
namespace net = ::appeal::net;
}  // namespace appeal::serve
