#include "serve/transport/socket_transport.hpp"

#include <chrono>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

double remaining_deadline_ms(const request& r) {
  if (r.deadline == request::no_deadline) return -1.0;
  const double remaining =
      std::chrono::duration<double, std::milli>(r.deadline - clock::now())
          .count();
  // A deadline already blown at send time must stay a deadline on the
  // wire: negative values mean "none" there, so clamp to an immediately
  // expiring budget instead (the stub sheds it as `expired`).
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace

socket_transport::socket_transport(transport_kind kind, std::string endpoint,
                                   double send_timeout_ms)
    : kind_(kind),
      endpoint_(std::move(endpoint)),
      send_timeout_ms_(send_timeout_ms) {
  APPEAL_CHECK(kind_ == transport_kind::uds || kind_ == transport_kind::tcp,
               "socket_transport kind must be uds or tcp");
  APPEAL_CHECK(!endpoint_.empty(),
               "socket transport needs an endpoint (uds path or host:port)");
}

socket_transport::~socket_transport() { stop(); }

void socket_transport::start(completion_sink on_complete,
                             failure_sink on_failure) {
  APPEAL_CHECK(on_complete != nullptr && on_failure != nullptr,
               "socket_transport needs completion and failure sinks");
  APPEAL_CHECK(!reader_.joinable(), "socket_transport started twice");
  on_complete_ = std::move(on_complete);
  on_failure_ = std::move(on_failure);
  socket_ = kind_ == transport_kind::uds ? net::connect_uds(endpoint_)
                                         : net::connect_tcp(endpoint_);
  net::set_send_timeout(socket_, send_timeout_ms_);
  reader_ = std::thread([this] { reader_loop(); });
}

void socket_transport::send_batch(const std::vector<const request*>& batch,
                                  const std::vector<std::uint64_t>& wire_ids,
                                  const std::string& model) {
  APPEAL_CHECK(reader_.joinable(), "send_batch before start()");
  APPEAL_CHECK(batch.size() == wire_ids.size(),
               "one wire id per appeal required");
  if (link_down_.load(std::memory_order_acquire)) {
    throw util::error("cloud link to '" + endpoint_ + "' is down");
  }
  std::vector<wire::appeal_view> views;
  views.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    wire::appeal_view v;
    v.id = wire_ids[i];
    v.key = batch[i]->key;
    v.label = batch[i]->label;
    v.priority = batch[i]->priority;
    v.deadline_ms = remaining_deadline_ms(*batch[i]);
    v.trace_id = batch[i]->trace != nullptr ? batch[i]->trace->trace_id : 0;
    // Split appeals ship the precomputed feature map; the encoder falls
    // back to the raw input whenever the feature is absent (or the wire
    // version predates v5), so the view always carries both.
    v.split_cut = batch[i]->split_cut;
    v.feature = &batch[i]->feature;
    v.model = model;
    v.input = &batch[i]->input;
    views.push_back(v);
  }
  const std::vector<std::uint8_t> framed = wire::encode_appeal_batch(views);
  {
    // Count before writing: a completion can race back (and a drain()er
    // snapshot the counters) before write_all even returns.
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.batches_sent += 1;
    counters_.appeals_sent += batch.size();
    counters_.bytes_sent += framed.size();
  }
  try {
    net::write_all(socket_, framed.data(), framed.size());
  } catch (const util::error&) {
    link_down_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.batches_sent -= 1;
    counters_.appeals_sent -= batch.size();
    counters_.bytes_sent -= framed.size();
    throw;
  }
}

void socket_transport::stop() {
  if (stopping_.exchange(true)) return;
  socket_.shutdown();  // unblocks the reader's recv()
  if (reader_.joinable()) reader_.join();
  socket_.reset();
}

transport_counters socket_transport::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void socket_transport::reader_loop() {
  wire::frame_splitter splitter;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const std::size_t n = net::read_some(socket_, chunk, sizeof(chunk));
    if (n == 0) break;  // EOF, peer reset, or local shutdown
    {
      std::lock_guard<std::mutex> lock(mutex_);
      counters_.bytes_received += n;
    }
    try {
      splitter.feed(chunk, n);
      while (std::optional<wire::frame> f = splitter.next()) {
        const std::vector<wire::response_record> records =
            wire::decode_response_batch(*f);
        std::vector<completion> done;
        done.reserve(records.size());
        for (const wire::response_record& r : records) {
          completion c;
          c.id = r.id;
          c.prediction = static_cast<std::size_t>(r.prediction);
          c.cloud_ms = r.cloud_ms;
          c.cloud_queue_ms = r.cloud_queue_ms;
          c.cloud_score_ms = r.cloud_score_ms;
          c.expired = r.status == wire::response_status::expired;
          c.overloaded = r.status == wire::response_status::overloaded;
          c.rejected = r.status == wire::response_status::rejected;
          c.retry_after_ms = r.retry_after_ms;
          done.push_back(c);
        }
        on_complete_(std::move(done));
      }
    } catch (const util::error& e) {
      APPEAL_LOG_ERROR("socket_transport")
          << "corrupt response stream" << util::kv("link", endpoint_)
          << util::kv("error", e.what());
      break;
    }
  }
  if (!stopping_.load(std::memory_order_acquire)) {
    link_down_.store(true, std::memory_order_release);
    APPEAL_LOG_WARN("socket_transport")
        << "link closed mid-run; completing appeals locally"
        << util::kv("link", endpoint_);
    on_failure_();
  }
}

}  // namespace appeal::serve
