// Real cloud transport: the wire.hpp protocol over a Unix-domain or TCP
// stream socket.
//
// send_batch() frames the coalesced appeals and writes them with one
// write_all — kernel socket-buffer backpressure replaces the simulator's
// modeled link occupancy, so appeals still pile up (and coalesce) while
// the link is saturated. A reader thread assembles response frames with
// a wire::frame_splitter and hands completions to the channel's sink;
// the server may batch, split, or reorder responses freely because the
// demux key is the per-appeal wire id.
//
// Failure model: a dead peer surfaces as a send_batch throw (caller
// falls back) or as the reader hitting EOF mid-run, which fires
// on_failure exactly once so the channel can complete outstanding
// appeals locally. stop() shuts the socket down first so the reader's
// blocking read returns, then joins it.
#pragma once

#include <atomic>
#include <mutex>
#include <thread>

#include "serve/transport/cloud_transport.hpp"
#include "serve/transport/socket_util.hpp"
#include "serve/transport/wire.hpp"

namespace appeal::serve {

class socket_transport : public cloud_transport {
 public:
  /// `kind` must be uds or tcp; connects in start(), not here.
  /// `send_timeout_ms` bounds a blocking write against a stalled peer
  /// (0 = fully blocking).
  socket_transport(transport_kind kind, std::string endpoint,
                   double send_timeout_ms = 0.0);
  ~socket_transport() override;

  void start(completion_sink on_complete, failure_sink on_failure) override;
  void send_batch(const std::vector<const request*>& batch,
                  const std::vector<std::uint64_t>& wire_ids,
                  const std::string& model) override;
  void stop() override;
  transport_counters counters() const override;

 private:
  void reader_loop();

  transport_kind kind_;
  std::string endpoint_;
  double send_timeout_ms_;
  completion_sink on_complete_;
  failure_sink on_failure_;

  net::fd socket_;
  std::thread reader_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> link_down_{false};

  mutable std::mutex mutex_;  // counters only
  transport_counters counters_;
};

}  // namespace appeal::serve
