#include "serve/cloud_channel.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double ms_since(clock::time_point from) {
  return std::chrono::duration<double, std::milli>(clock::now() - from)
      .count();
}

}  // namespace

cloud_channel::cloud_channel(cloud_backend& backend,
                             const collab::cost_model& link,
                             const link_config& cfg, std::string name)
    : backend_(backend),
      config_(cfg),
      name_(std::move(name)),
      transport_(make_cloud_transport(cfg, backend, link)) {
  APPEAL_CHECK(config_.coalesce_window_ms >= 0.0,
               "coalesce window must be non-negative");
  config_.max_batch_appeals = std::max<std::size_t>(1, cfg.max_batch_appeals);
  transport_->start(
      [this](std::vector<cloud_transport::completion>&& done) {
        on_completions(std::move(done));
      },
      [this] { on_link_failure(); });
  worker_ = std::thread([this] { run(); });
}

cloud_channel::~cloud_channel() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  worker_.join();
  transport_->stop();
}

void cloud_channel::appeal(request&& r, completion_fn on_complete) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APPEAL_CHECK(!stopping_, "appeal() after channel shutdown");
    pending_.push_back(
        pending{std::move(r), std::move(on_complete), clock::now()});
    ++outstanding_;
  }
  wake_.notify_all();
}

void cloud_channel::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

std::size_t cloud_channel::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

link_counters cloud_channel::counters() const {
  link_counters c;
  c.wire = transport_->counters();
  std::lock_guard<std::mutex> lock(mutex_);
  c.completed = completed_;
  c.local_fallbacks = local_fallbacks_;
  return c;
}

void cloud_channel::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Response watchdog (socket transports): a peer that accepts
    // appeals but answers none of them within the budget is declared
    // dead — outstanding appeals complete locally so drain() always
    // terminates. Checked every iteration, so it fires under sustained
    // load as well as when the channel idles.
    reap_overdue(lock);

    if (pending_.empty()) {
      if (stopping_) return;
      const std::optional<clock::time_point> due = watchdog_due_locked();
      if (due.has_value()) {
        wake_.wait_until(lock, *due, [&] {
          return stopping_ || !pending_.empty();
        });
        continue;  // loop re-checks the watchdog and the queues
      }
      wake_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      continue;
    }

    // Coalesce: everything pending goes into one frame (up to the batch
    // cap); an optional window holds the batch open so a burst arriving
    // just behind the first appeal shares its RTT.
    if (config_.coalesce_window_ms > 0.0 &&
        pending_.size() < config_.max_batch_appeals) {
      const clock::time_point close_at =
          pending_.front().arrived + from_ms(config_.coalesce_window_ms);
      wake_.wait_until(lock, close_at, [&] {
        return stopping_ || pending_.size() >= config_.max_batch_appeals;
      });
      if (pending_.empty()) continue;
    }

    const std::size_t take =
        std::min(pending_.size(), config_.max_batch_appeals);
    std::vector<std::uint64_t> wire_ids;
    wire_ids.reserve(take);
    const clock::time_point batched_at = clock::now();
    for (std::size_t i = 0; i < take; ++i) {
      pending p = std::move(pending_.front());
      pending_.pop_front();
      if (p.req.trace != nullptr) {
        p.req.trace->set(obs::stage::appeal_coalesce,
                         std::chrono::duration<double, std::milli>(
                             batched_at - p.arrived)
                             .count());
      }
      const std::uint64_t id = next_wire_id_++;
      wire_ids.push_back(id);
      in_flight_.emplace(
          id, in_flight{std::move(p.req), std::move(p.on_complete),
                        batched_at});
      // Only the watchdog reads flight_order_; skipping the append when
      // it cannot fire keeps the deque from growing forever under the
      // sim transport (whose completions are internally guaranteed).
      if (watchdog_enabled()) flight_order_.emplace_back(id, batched_at);
    }
    // The in-flight table owns the requests; build the transport's view
    // while still locked (the unordered_map's node storage never moves,
    // and sending_ids_ pins these entries against concurrent extraction
    // by on_link_failure while the send path reads them off-lock).
    std::vector<const request*> batch;
    batch.reserve(take);
    for (const std::uint64_t id : wire_ids) {
      batch.push_back(&in_flight_.at(id).req);
    }
    sending_ids_ = wire_ids;
    const bool use_transport = !link_down_;
    lock.unlock();

    bool sent = false;
    if (use_transport) {
      try {
        // May block while the link is busy — exactly the window in which
        // the next batch accumulates.
        transport_->send_batch(batch, wire_ids, name_);
        sent = true;
      } catch (const util::error&) {
        // Fall through to local completion below.
      }
    }
    lock.lock();
    sending_ids_.clear();
    if (sent) {
      // Stamp the wire-tx window on whatever this batch still has in
      // flight. An appeal the cloud already answered mid-send missed the
      // stamp — its span's wire_rx residual absorbs the time instead.
      const double tx_ms = ms_since(batched_at);
      for (const std::uint64_t id : wire_ids) {
        auto it = in_flight_.find(id);
        if (it != in_flight_.end()) it->second.tx_ms = tx_ms;
      }
    }
    if (!sent || link_down_) {
      // Send failed, or the link died while this batch was in the air
      // (on_link_failure left the pinned entries for us): whatever the
      // cloud has not already answered completes locally.
      link_down_ = true;
      flight_order_.clear();
      std::vector<in_flight> entries = extract_locked(wire_ids);
      local_fallbacks_ += entries.size();
      lock.unlock();
      complete_locally(std::move(entries));
      lock.lock();
    }
  }
}

std::vector<cloud_channel::in_flight> cloud_channel::extract_locked(
    const std::vector<std::uint64_t>& ids) {
  std::vector<in_flight> entries;
  entries.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    auto it = in_flight_.find(id);
    if (it == in_flight_.end()) continue;  // already answered
    entries.push_back(std::move(it->second));
    in_flight_.erase(it);
  }
  return entries;
}

bool cloud_channel::watchdog_enabled() const {
  return config_.transport != transport_kind::sim &&
         config_.response_timeout_ms > 0.0 && !link_down_;
}

std::optional<std::chrono::steady_clock::time_point>
cloud_channel::watchdog_due_locked() {
  if (!watchdog_enabled()) return std::nullopt;
  while (!flight_order_.empty() &&
         in_flight_.find(flight_order_.front().first) == in_flight_.end()) {
    flight_order_.pop_front();  // already answered
  }
  if (flight_order_.empty()) return std::nullopt;
  return flight_order_.front().second + from_ms(config_.response_timeout_ms);
}

void cloud_channel::reap_overdue(std::unique_lock<std::mutex>& lock) {
  const std::optional<clock::time_point> due = watchdog_due_locked();
  if (!due.has_value() || clock::now() < *due) return;
  link_down_ = true;
  flight_order_.clear();
  std::vector<std::uint64_t> overdue;
  overdue.reserve(in_flight_.size());
  for (const auto& [id, entry] : in_flight_) overdue.push_back(id);
  std::vector<in_flight> entries = extract_locked(overdue);
  local_fallbacks_ += entries.size();
  lock.unlock();
  APPEAL_LOG_WARN("cloud_channel")
      << "no response before the watchdog; completing appeals locally"
      << util::kv("link", name_)
      << util::kv("timeout_ms", config_.response_timeout_ms)
      << util::kv("appeals", entries.size());
  complete_locally(std::move(entries));
  lock.lock();
}

void cloud_channel::on_completions(
    std::vector<cloud_transport::completion>&& batch) {
  std::vector<std::pair<in_flight, appeal_outcome>> done;
  done.reserve(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const cloud_transport::completion& c : batch) {
      auto it = in_flight_.find(c.id);
      if (it == in_flight_.end()) continue;  // already completed locally
      appeal_outcome outcome;
      outcome.prediction = c.prediction;
      outcome.cloud_ms = c.cloud_ms;
      outcome.cloud_queue_ms = c.cloud_queue_ms;
      outcome.cloud_score_ms = c.cloud_score_ms;
      outcome.expired = c.expired;
      done.emplace_back(std::move(it->second), outcome);
      in_flight_.erase(it);
    }
  }
  for (auto& [entry, outcome] : done) {
    finish(std::move(entry), outcome);
  }
}

void cloud_channel::on_link_failure() {
  std::vector<in_flight> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    link_down_ = true;
    flight_order_.clear();
    entries.reserve(in_flight_.size());
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      // Entries pinned by an in-progress send stay: the coalescing
      // thread is still reading them through raw pointers and will
      // sweep them itself once send_batch returns (it sees link_down_).
      if (std::find(sending_ids_.begin(), sending_ids_.end(), it->first) !=
          sending_ids_.end()) {
        ++it;
        continue;
      }
      entries.push_back(std::move(it->second));
      it = in_flight_.erase(it);
    }
    local_fallbacks_ += entries.size();
  }
  complete_locally(std::move(entries));
}

void cloud_channel::complete_locally(std::vector<in_flight>&& entries) {
  for (in_flight& entry : entries) {
    appeal_outcome outcome;
    {
      // The coalescing thread (failed-send sweep, watchdog) and the
      // transport's reader thread (on_link_failure) can both land here
      // while the link dies; a network backend's forward is not
      // thread-safe, so local scoring is serialized. Cold path — this
      // only runs when the cloud is already gone.
      std::lock_guard<std::mutex> lock(fallback_mutex_);
      outcome.prediction = backend_.infer(entry.req);
    }
    finish(std::move(entry), outcome);
  }
}

void cloud_channel::finish(in_flight&& entry, appeal_outcome outcome) {
  outcome.link_ms = ms_since(entry.batched_at);
  if (entry.req.trace != nullptr) {
    obs::trace_span& span = *entry.req.trace;
    span.set(obs::stage::wire_tx, entry.tx_ms);
    span.set(obs::stage::cloud_queue, outcome.cloud_queue_ms);
    span.set(obs::stage::cloud_score, outcome.cloud_score_ms);
    // The rest of the link round trip. The cloud stages are durations on
    // the cloud's clock, so no cross-clock sync is needed; set() clamps
    // a negative remainder (clock disagreement) to 0, which shows up as
    // a reconciliation gap in tools/trace_report rather than a negative
    // stage.
    span.set(obs::stage::wire_rx,
             outcome.link_ms - entry.tx_ms - outcome.cloud_queue_ms -
                 outcome.cloud_score_ms);
  }
  entry.on_complete(std::move(entry.req), outcome);
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  --outstanding_;
  if (outstanding_ == 0) drained_.notify_all();
}

}  // namespace appeal::serve
