#include "serve/cloud_channel.hpp"

#include <algorithm>
#include <utility>

#include "serve/transport/fault_transport.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double ms_since(clock::time_point from) {
  return std::chrono::duration<double, std::milli>(clock::now() - from)
      .count();
}

void accumulate(transport_counters& into, const transport_counters& c) {
  into.batches_sent += c.batches_sent;
  into.appeals_sent += c.appeals_sent;
  into.bytes_sent += c.bytes_sent;
  into.bytes_received += c.bytes_received;
}

obs::label_set link_labels(const std::string& name) {
  if (name.empty()) return {};
  return {{"link", name}};
}

/// The split instruments join the deployment-labeled family (the
/// channel's name IS its deployment's name), so one scrape correlates
/// the active cut with that deployment's request ledgers.
obs::label_set deployment_labels(const std::string& name) {
  if (name.empty()) return {};
  return {{"deployment", name}};
}

}  // namespace

const char* breaker_state_name(breaker_state s) {
  switch (s) {
    case breaker_state::closed:
      return "closed";
    case breaker_state::open:
      return "open";
    case breaker_state::half_open:
      return "half-open";
  }
  return "?";
}

cloud_channel::cloud_channel(cloud_backend& backend,
                             const collab::cost_model& link,
                             const link_config& cfg, std::string name)
    : backend_(backend),
      config_(cfg),
      link_(link),
      name_(std::move(name)),
      jitter_rng_(cfg.retry_seed),
      metric_retries_(obs::default_registry().get_counter(
          "appeal_retry_total", link_labels(name_),
          "overloaded appeals re-sent after backoff")),
      metric_overloaded_(obs::default_registry().get_counter(
          "appeal_overloaded_total", link_labels(name_),
          "overloaded answers received from the cloud")),
      metric_breaker_(obs::default_registry().get_gauge(
          "appeal_breaker_state", link_labels(name_),
          "cloud-link circuit breaker (0 closed, 1 open, 2 half-open)")),
      metric_split_cut_(obs::default_registry().get_gauge(
          "appeal_split_cut", deployment_labels(name_),
          "active split-computing cut id (0 = raw-input appeals)")),
      metric_split_bytes_saved_(obs::default_registry().get_counter(
          "appeal_split_bytes_saved_total", deployment_labels(name_),
          "uplink bytes saved by shipping feature maps instead of inputs")) {
  APPEAL_CHECK(config_.coalesce_window_ms >= 0.0,
               "coalesce window must be non-negative");
  if (config_.split.mode != split_mode::off) {
    APPEAL_CHECK(!config_.split.cuts.empty(),
                 "split mode needs the cloud model's cut table "
                 "(serve::enumerate_cloud_cuts)");
    for (std::size_t i = 0; i < config_.split.cuts.size(); ++i) {
      APPEAL_CHECK(config_.split.cuts[i].id == i + 1,
                   "split cut table must carry contiguous 1-based ids");
    }
    if (config_.split.mode == split_mode::fixed) {
      APPEAL_CHECK(config_.split.cut >= 1 &&
                       config_.split.cut <= config_.split.cuts.size(),
                   "fixed split cut id outside the cut table");
    }
    cut_rejected_.assign(config_.split.cuts.size(), false);
  }
  metric_split_cut_.set(0.0);
  APPEAL_CHECK(config_.breaker_open_ms > 0.0,
               "breaker cool-off must be positive");
  config_.max_batch_appeals = std::max<std::size_t>(1, cfg.max_batch_appeals);
  // Config mistakes must still fail the constructor loudly — validate
  // them before the connect attempt, whose failure is survivable.
  if (!config_.fault.empty()) parse_fault_spec(config_.fault);
  APPEAL_CHECK(config_.transport == transport_kind::sim ||
                   !config_.endpoint.empty(),
               "socket transports need an endpoint");
  metric_breaker_.set(0.0);
  try {
    transport_ = make_cloud_transport(config_, backend, link);
    const std::uint64_t epoch = epoch_;
    transport_->start(
        [this, epoch](std::vector<cloud_transport::completion>&& done) {
          on_completions(epoch, std::move(done));
        },
        [this, epoch] { on_link_failure(epoch); });
  } catch (const util::error& e) {
    // A cloud that is down while the edge deploys must not take the
    // edge down with it: come up with the breaker open (appeals answer
    // locally from the first request) and let the half-open probe
    // reconnect once the peer is back.
    transport_.reset();
    ++breaker_opens_;
    set_breaker_locked(breaker_state::open);
    open_until_ = clock::now() + from_ms(config_.breaker_open_ms);
    APPEAL_LOG_WARN("cloud_channel")
        << "cloud unreachable at startup; circuit breaker opened"
        << util::kv("link", name_) << util::kv("error", e.what())
        << util::kv("cool_off_ms", config_.breaker_open_ms);
  }
  worker_ = std::thread([this] { run(); });
}

cloud_channel::~cloud_channel() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  worker_.join();
  // No send can be in progress and the run thread is gone: stopping the
  // live and retired transports here joins their reader threads safely.
  if (transport_ != nullptr) transport_->stop();
  for (auto& t : retired_) t->stop();
  retired_.clear();
}

void cloud_channel::appeal(request&& r, completion_fn on_complete) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APPEAL_CHECK(!stopping_, "appeal() after channel shutdown");
    pending_.push_back(
        pending{std::move(r), std::move(on_complete), clock::now(), 0});
    ++outstanding_;
  }
  wake_.notify_all();
}

void cloud_channel::drain() {
  // A fast peer can answer a whole batch while the coalescing thread is
  // still inside send_batch; waiting out sending_ids_ keeps drain() from
  // returning before that send's counter bookkeeping has landed.
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock,
                [&] { return outstanding_ == 0 && sending_ids_.empty(); });
}

std::size_t cloud_channel::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

link_counters cloud_channel::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  link_counters c;
  c.wire = wire_base_;
  if (transport_ != nullptr) accumulate(c.wire, transport_->counters());
  c.completed = completed_;
  c.local_fallbacks = local_fallbacks_;
  c.retries = retries_;
  c.overloaded = overloaded_;
  c.breaker_opens = breaker_opens_;
  c.split_appeals = split_appeals_;
  c.split_bytes_saved = split_bytes_saved_;
  c.split_rejected = split_rejected_;
  c.breaker = static_cast<std::uint8_t>(breaker_);
  c.split_cut = active_cut_;
  return c;
}

void cloud_channel::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    dispose_retired(lock);
    // Response watchdog (socket transports): a peer that accepts
    // appeals but answers none of them within the budget is declared
    // dead — outstanding appeals complete locally so drain() always
    // terminates. Checked every iteration, so it fires under sustained
    // load as well as when the channel idles.
    reap_overdue(lock);
    promote_due_retries_locked();
    if (breaker_ == breaker_state::open && clock::now() >= open_until_) {
      to_half_open(lock);
    }

    if (pending_.empty()) {
      if (stopping_) {
        if (retry_queue_.empty()) return;
        // Shutdown with retries parked: nobody waits out a backoff once
        // the channel is going away — resolve them locally now.
        std::vector<in_flight> entries;
        entries.reserve(retry_queue_.size());
        const clock::time_point now = clock::now();
        for (auto& [due, p] : retry_queue_) {
          entries.push_back(in_flight{std::move(p.req),
                                      std::move(p.on_complete), now, 0.0,
                                      p.attempts});
        }
        retry_queue_.clear();
        local_fallbacks_ += entries.size();
        lock.unlock();
        complete_locally(std::move(entries));
        lock.lock();
        continue;
      }
      // The due time is a snapshot: an overload answer arriving mid-wait
      // parks a retry whose backoff may elapse long before it (the
      // watchdog horizon is typically seconds out, a backoff tens of
      // ms). The predicate therefore re-derives the next event on every
      // wake-up and bails as soon as an earlier one appears — without
      // this, a parked retry sleeps out the stale watchdog deadline.
      const std::optional<clock::time_point> due = next_event_locked();
      if (due.has_value()) {
        wake_.wait_until(lock, *due, [&] {
          if (stopping_ || !pending_.empty()) return true;
          const std::optional<clock::time_point> now_due =
              next_event_locked();
          return now_due.has_value() && *now_due < *due;
        });
      } else {
        wake_.wait(lock, [&] {
          return stopping_ || !pending_.empty() ||
                 next_event_locked().has_value();
        });
      }
      continue;
    }

    // Breaker not closed (and not due for a probe): the cloud is
    // resting. Everything pending completes from the local fallback —
    // bounded latency beats queueing behind a sick link, and the cool-off
    // timer (not traffic) decides when to try the wire again.
    const bool probing =
        breaker_ == breaker_state::half_open && !probe_in_flight_;
    if (breaker_ != breaker_state::closed && !probing) {
      std::vector<in_flight> entries;
      entries.reserve(pending_.size());
      const clock::time_point now = clock::now();
      while (!pending_.empty()) {
        pending p = std::move(pending_.front());
        pending_.pop_front();
        entries.push_back(in_flight{std::move(p.req),
                                    std::move(p.on_complete), now, 0.0,
                                    p.attempts});
      }
      local_fallbacks_ += entries.size();
      lock.unlock();
      complete_locally(std::move(entries));
      lock.lock();
      continue;
    }

    // Coalesce: everything pending goes into one frame (up to the batch
    // cap); an optional window holds the batch open so a burst arriving
    // just behind the first appeal shares its RTT. A half-open probe
    // skips the window and ships alone, immediately.
    if (!probing && config_.coalesce_window_ms > 0.0 &&
        pending_.size() < config_.max_batch_appeals) {
      const clock::time_point close_at =
          pending_.front().arrived + from_ms(config_.coalesce_window_ms);
      wake_.wait_until(lock, close_at, [&] {
        return stopping_ || pending_.size() >= config_.max_batch_appeals;
      });
      if (pending_.empty()) continue;
    }

    const std::size_t take =
        probing ? 1 : std::min(pending_.size(), config_.max_batch_appeals);
    std::vector<std::uint64_t> wire_ids;
    wire_ids.reserve(take);
    const clock::time_point batched_at = clock::now();
    for (std::size_t i = 0; i < take; ++i) {
      pending p = std::move(pending_.front());
      pending_.pop_front();
      if (p.req.trace != nullptr) {
        p.req.trace->set(obs::stage::appeal_coalesce,
                         std::chrono::duration<double, std::milli>(
                             batched_at - p.arrived)
                             .count());
      }
      const std::uint64_t id = next_wire_id_++;
      wire_ids.push_back(id);
      in_flight_.emplace(
          id, in_flight{std::move(p.req), std::move(p.on_complete),
                        batched_at, 0.0, p.attempts});
      // Only the watchdog reads flight_order_; skipping the append when
      // it cannot fire keeps the deque from growing forever under the
      // sim transport (whose completions are internally guaranteed).
      if (watchdog_enabled()) flight_order_.emplace_back(id, batched_at);
    }
    // The in-flight table owns the requests; build the transport's view
    // while still locked (the unordered_map's node storage never moves,
    // and sending_ids_ pins these entries against concurrent extraction
    // by the failure paths while the send path reads them off-lock).
    std::vector<request*> mutable_batch;
    std::vector<const request*> batch;
    mutable_batch.reserve(take);
    batch.reserve(take);
    for (const std::uint64_t id : wire_ids) {
      request* r = &in_flight_.at(id).req;
      mutable_batch.push_back(r);
      batch.push_back(r);
    }
    sending_ids_ = wire_ids;
    if (probing) probe_in_flight_ = true;
    const std::uint32_t cut = choose_cut_locked();
    // Raw pointer captured under the lock: a reader-thread failure may
    // retire the unique_ptr mid-send, but the object itself is only
    // disposed on this thread (dispose_retired), so it outlives the call.
    cloud_transport* link = transport_.get();
    lock.unlock();

    // Split appeals: run the cloud model's prefix here, before the send,
    // and attach the feature map the frame will carry instead of the
    // input. Off-lock is safe — sending_ids_ pins these entries against
    // every failure-path extraction, and nothing has hit the wire yet so
    // no completion can race in. The fallback mutex serializes against
    // concurrent local scoring on the same (not thread-safe) backend.
    bool split_failed = false;
    std::size_t split_count = 0;
    std::size_t bytes_saved = 0;
    if (cut != 0) {
      std::lock_guard<std::mutex> fb(fallback_mutex_);
      for (request* r : mutable_batch) {
        if (r->input.empty()) {  // nothing to partition (replay workload)
          r->split_cut = 0;
          continue;
        }
        // A retry may already carry the feature from its last attempt;
        // recompute only when the cut moved under it.
        if (r->split_cut != cut || r->feature.empty()) {
          tensor feature = backend_.prefix_feature(r->input, cut);
          if (feature.empty()) {
            split_failed = true;  // backend cannot split; never try again
            break;
          }
          r->feature = std::move(feature);
          r->split_cut = cut;
        }
        ++split_count;
        const std::size_t raw = r->input.size() * sizeof(float);
        const std::size_t shipped = r->feature.size() * sizeof(float) + 4;
        bytes_saved += raw > shipped ? raw - shipped : 0;
      }
    }
    if (split_failed) {
      for (request* r : mutable_batch) {
        r->split_cut = 0;
        r->feature = {};
      }
      split_count = 0;
      bytes_saved = 0;
    }

    bool sent = false;
    const std::size_t bytes_before =
        link != nullptr ? link->counters().bytes_sent : 0;
    if (link != nullptr) {
      try {
        // May block while the link is busy — exactly the window in which
        // the next batch accumulates.
        link->send_batch(batch, wire_ids, name_);
        sent = true;
      } catch (const util::error& e) {
        APPEAL_LOG_WARN("cloud_channel")
            << "appeal send failed" << util::kv("link", name_)
            << util::kv("error", e.what());
      }
    }
    lock.lock();
    sending_ids_.clear();
    if (split_failed && split_supported_) {
      split_supported_ = false;
      choose_cut_locked();
    }
    if (sent) {
      // Stamp the wire-tx window on whatever this batch still has in
      // flight. An appeal the cloud already answered mid-send missed the
      // stamp — its span's wire_rx residual absorbs the time instead.
      const double tx_ms = ms_since(batched_at);
      for (const std::uint64_t id : wire_ids) {
        auto it = in_flight_.find(id);
        if (it != in_flight_.end()) it->second.tx_ms = tx_ms;
      }
      // Measured link bandwidth: encoded bytes this send put on the wire
      // over the time send_batch held the link. Feeds the auto-mode cut
      // picker; skipped when the send was too fast to time honestly.
      const std::size_t sent_bytes =
          link->counters().bytes_sent - bytes_before;
      if (tx_ms > 0.05 && sent_bytes > 0) {
        const double bw = static_cast<double>(sent_bytes) / tx_ms;
        bw_ema_bytes_per_ms_ = bw_ema_bytes_per_ms_ == 0.0
                                   ? bw
                                   : 0.8 * bw_ema_bytes_per_ms_ + 0.2 * bw;
      }
      if (split_count > 0) {
        split_appeals_ += split_count;
        split_bytes_saved_ += bytes_saved;
        metric_split_bytes_saved_.add(bytes_saved);
      }
    }
    // drain() also waits out the send window (sending_ids_); completions
    // that raced the send back already dropped outstanding_ to zero, so
    // wake any drainer now that this batch's bookkeeping is done.
    if (outstanding_ == 0) drained_.notify_all();
    if (!sent || transport_ == nullptr) {
      // Send failed (hard failure: trip the breaker and retire the
      // link), or the link died mid-send and the failure path left the
      // pinned entries for us: whatever the cloud has not already
      // answered completes locally. The sweep covers EVERY in-flight
      // entry, not just this batch — retiring the link bumped the
      // epoch, so the reader's own failure sweep is discarded as stale
      // when the send thread trips first, and earlier unanswered frames
      // would otherwise strand forever (flight_order_ is cleared on
      // retire, so even the watchdog can no longer see them).
      if (!sent && link != nullptr) {
        open_breaker_locked(/*retire=*/true, "send failure");
      }
      std::vector<std::uint64_t> stranded;
      stranded.reserve(in_flight_.size());
      for (const auto& [id, entry] : in_flight_) stranded.push_back(id);
      std::vector<in_flight> entries = extract_locked(stranded);
      local_fallbacks_ += entries.size();
      update_pressure_locked();
      lock.unlock();
      complete_locally(std::move(entries));
      lock.lock();
    }
  }
}

std::vector<cloud_channel::in_flight> cloud_channel::extract_locked(
    const std::vector<std::uint64_t>& ids) {
  std::vector<in_flight> entries;
  entries.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    auto it = in_flight_.find(id);
    if (it == in_flight_.end()) continue;  // already answered
    entries.push_back(std::move(it->second));
    in_flight_.erase(it);
  }
  return entries;
}

bool cloud_channel::watchdog_enabled() const {
  return config_.transport != transport_kind::sim &&
         config_.response_timeout_ms > 0.0 && transport_ != nullptr;
}

std::optional<std::chrono::steady_clock::time_point>
cloud_channel::watchdog_due_locked() {
  if (!watchdog_enabled()) return std::nullopt;
  while (!flight_order_.empty() &&
         in_flight_.find(flight_order_.front().first) == in_flight_.end()) {
    flight_order_.pop_front();  // already answered
  }
  if (flight_order_.empty()) return std::nullopt;
  return flight_order_.front().second + from_ms(config_.response_timeout_ms);
}

void cloud_channel::reap_overdue(std::unique_lock<std::mutex>& lock) {
  const std::optional<clock::time_point> due = watchdog_due_locked();
  if (!due.has_value() || clock::now() < *due) return;
  const clock::time_point now = clock::now();
  const auto budget = from_ms(config_.response_timeout_ms);
  if (breaker_ == breaker_state::closed && now - last_rx_ < budget) {
    // The peer answered other frames inside the budget, so the link is
    // alive and this frame was lost in transit (fault injection, a peer
    // restart race). Complete just the overdue appeals locally and keep
    // the link — retiring a live link over one lost frame would cycle
    // the breaker forever under sustained frame loss, and every cycle
    // costs breaker_open_ms of all-local serving.
    std::vector<std::uint64_t> lost;
    while (!flight_order_.empty()) {
      const auto& [id, at] = flight_order_.front();
      if (in_flight_.find(id) == in_flight_.end()) {
        flight_order_.pop_front();  // already answered
        continue;
      }
      if (now < at + budget) break;
      lost.push_back(id);
      flight_order_.pop_front();
    }
    std::vector<in_flight> entries = extract_locked(lost);
    if (entries.empty()) return;
    local_fallbacks_ += entries.size();
    update_pressure_locked();
    lock.unlock();
    APPEAL_LOG_WARN("cloud_channel")
        << "frame lost on a live link; completing its appeals locally"
        << util::kv("link", name_)
        << util::kv("timeout_ms", config_.response_timeout_ms)
        << util::kv("appeals", entries.size());
    complete_locally(std::move(entries));
    lock.lock();
    return;
  }
  open_breaker_locked(/*retire=*/true, "response watchdog");
  std::vector<std::uint64_t> overdue;
  overdue.reserve(in_flight_.size());
  for (const auto& [id, entry] : in_flight_) overdue.push_back(id);
  std::vector<in_flight> entries = extract_locked(overdue);
  local_fallbacks_ += entries.size();
  update_pressure_locked();
  lock.unlock();
  APPEAL_LOG_WARN("cloud_channel")
      << "no response before the watchdog; completing appeals locally"
      << util::kv("link", name_)
      << util::kv("timeout_ms", config_.response_timeout_ms)
      << util::kv("appeals", entries.size());
  complete_locally(std::move(entries));
  lock.lock();
}

void cloud_channel::open_breaker_locked(bool retire, const char* why) {
  if (retire && transport_ != nullptr) {
    accumulate(wire_base_, transport_->counters());
    retired_.push_back(std::move(transport_));
    transport_ = nullptr;
    // Invalidate the retired link's callbacks: a straggler completion or
    // failure from its reader thread must not touch the next epoch's
    // state.
    ++epoch_;
    flight_order_.clear();
  }
  probe_in_flight_ = false;
  if (breaker_ != breaker_state::open) {
    ++breaker_opens_;
    APPEAL_LOG_WARN("cloud_channel")
        << "circuit breaker opened" << util::kv("link", name_)
        << util::kv("why", why)
        << util::kv("cool_off_ms", config_.breaker_open_ms);
  }
  set_breaker_locked(breaker_state::open);
  open_until_ = clock::now() + from_ms(config_.breaker_open_ms);
  overload_streak_ = 0;
  wake_.notify_all();  // the run thread re-arms its timer on the cool-off
}

void cloud_channel::set_breaker_locked(breaker_state s) {
  breaker_ = s;
  breaker_atomic_.store(static_cast<std::uint8_t>(s),
                        std::memory_order_relaxed);
  metric_breaker_.set(static_cast<double>(static_cast<std::uint8_t>(s)));
  update_pressure_locked();
}

void cloud_channel::update_pressure_locked() {
  pressure_.store(breaker_ != breaker_state::closed || overload_streak_ > 0,
                  std::memory_order_relaxed);
}

void cloud_channel::promote_due_retries_locked() {
  const clock::time_point now = clock::now();
  while (!retry_queue_.empty() && retry_queue_.begin()->first <= now) {
    pending_.push_back(std::move(retry_queue_.begin()->second));
    retry_queue_.erase(retry_queue_.begin());
  }
}

std::optional<std::chrono::steady_clock::time_point>
cloud_channel::next_event_locked() {
  std::optional<clock::time_point> due = watchdog_due_locked();
  if (!retry_queue_.empty() &&
      (!due.has_value() || retry_queue_.begin()->first < *due)) {
    due = retry_queue_.begin()->first;
  }
  if (breaker_ == breaker_state::open &&
      (!due.has_value() || open_until_ < *due)) {
    due = open_until_;
  }
  return due;
}

void cloud_channel::dispose_retired(std::unique_lock<std::mutex>& lock) {
  if (retired_.empty()) return;
  std::vector<std::unique_ptr<cloud_transport>> dead;
  dead.swap(retired_);
  lock.unlock();
  // stop() joins the retired reader thread; it must run here (the run
  // thread) and off-lock — the reader's own failure callback is what
  // parked the transport, and it may still be finishing up.
  for (auto& t : dead) t->stop();
  dead.clear();
  lock.lock();
}

void cloud_channel::to_half_open(std::unique_lock<std::mutex>& lock) {
  if (transport_ != nullptr) {
    // Soft trip (overload): the link never died. Probe it again.
    set_breaker_locked(breaker_state::half_open);
    probe_in_flight_ = false;
    return;
  }
  // Hard trip: reconnect from scratch. The epoch is bumped before the
  // lock drops so the fresh link's callbacks are valid the moment its
  // reader starts. It also salts the fault decorator's seed: a fresh
  // wrapper re-running the old fault plan from frame #1 could drop the
  // half-open probe after every reconnect and pin the breaker open.
  const std::uint64_t epoch = ++epoch_;
  lock.unlock();
  std::unique_ptr<cloud_transport> fresh;
  try {
    fresh = make_cloud_transport(config_, backend_, link_, epoch);
    fresh->start(
        [this, epoch](std::vector<cloud_transport::completion>&& done) {
          on_completions(epoch, std::move(done));
        },
        [this, epoch] { on_link_failure(epoch); });
  } catch (const util::error& e) {
    APPEAL_LOG_WARN("cloud_channel")
        << "reconnect failed; breaker stays open"
        << util::kv("link", name_) << util::kv("error", e.what());
    fresh.reset();
  }
  lock.lock();
  if (fresh == nullptr) {
    open_until_ = clock::now() + from_ms(config_.breaker_open_ms);
    return;
  }
  transport_ = std::move(fresh);
  probe_in_flight_ = false;
  set_breaker_locked(breaker_state::half_open);
  APPEAL_LOG_INFO("cloud_channel")
      << "reconnected; breaker half-open awaiting probe"
      << util::kv("link", name_);
}

double cloud_channel::backoff_delay_ms(std::size_t attempts, double hint) {
  double d = std::max(0.0, config_.retry_backoff_ms);
  for (std::size_t i = 0; i < attempts && d < config_.retry_backoff_max_ms;
       ++i) {
    d *= 2.0;
  }
  d = std::min(d, config_.retry_backoff_max_ms);
  const double j = std::clamp(config_.retry_jitter, 0.0, 1.0);
  if (j > 0.0) d *= (1.0 - j) + 2.0 * j * jitter_rng_.uniform();
  return std::max(hint, d);  // never retry before the cloud asked us to
}

std::uint32_t cloud_channel::choose_cut_locked() {
  if (config_.split.mode == split_mode::off || !split_supported_) {
    if (active_cut_ != 0) {
      active_cut_ = 0;
      metric_split_cut_.set(0.0);
    }
    return 0;
  }
  std::uint32_t chosen = 0;
  if (config_.split.mode == split_mode::fixed) {
    const std::uint32_t cut = config_.split.cut;
    chosen = cut_rejected_[cut - 1] ? 0 : cut;
  } else {
    // Auto: minimize modeled appeal latency per candidate. Uplink is the
    // encoded payload at the measured bandwidth (the cost model's
    // comm_ms_per_kb until the first send warms the EMA); cloud compute
    // is the suffix past the cut; the cloud-wait EMA rides every
    // candidate equally but keeps the cost an honest latency estimate.
    // Edge prefix compute is NOT charged — the cut reuses backbone
    // compute the edge already paid for.
    const auto uplink_ms = [&](double bytes) {
      return bw_ema_bytes_per_ms_ > 0.0
                 ? bytes / bw_ema_bytes_per_ms_
                 : bytes / 1024.0 * link_.comm_ms_per_kb;
    };
    const double flops_per_ms = link_.cloud_gflops * 1e6;
    const split_cut_spec& first = config_.split.cuts.front();
    const double full_flops =
        static_cast<double>(first.prefix_flops + first.suffix_flops);
    // Candidate 0: raw input, full recompute.
    double best_cost = uplink_ms(link_.input_kb * 1024.0) +
                       full_flops / flops_per_ms + cloud_wait_ema_ms_;
    for (const split_cut_spec& c : config_.split.cuts) {
      if (cut_rejected_[c.id - 1]) continue;
      // +4: the cut_id u32 the v5 record adds to the frame.
      const double cost =
          uplink_ms(static_cast<double>(c.wire_bytes) + 4.0) +
          static_cast<double>(c.suffix_flops) / flops_per_ms +
          cloud_wait_ema_ms_;
      if (cost < best_cost) {
        best_cost = cost;
        chosen = c.id;
      }
    }
  }
  if (chosen != active_cut_) {
    APPEAL_LOG_INFO("cloud_channel")
        << "split cut changed" << util::kv("link", name_)
        << util::kv("cut", static_cast<std::size_t>(chosen))
        << util::kv(
               "name",
               chosen == 0 ? "raw-input"
                           : config_.split.cuts[chosen - 1].name.c_str());
    active_cut_ = chosen;
    metric_split_cut_.set(static_cast<double>(chosen));
  }
  return chosen;
}

void cloud_channel::reject_cut_locked(std::uint32_t cut) {
  ++split_rejected_;
  if (cut == 0 || cut > cut_rejected_.size() || cut_rejected_[cut - 1]) {
    return;
  }
  cut_rejected_[cut - 1] = true;
  APPEAL_LOG_WARN("cloud_channel")
      << "cloud rejected split cut; completing locally and "
         "blacklisting it"
      << util::kv("link", name_)
      << util::kv("cut", static_cast<std::size_t>(cut));
  if (active_cut_ == cut) choose_cut_locked();
}

void cloud_channel::on_completions(
    std::uint64_t epoch, std::vector<cloud_transport::completion>&& batch) {
  std::vector<std::pair<in_flight, appeal_outcome>> done;
  std::vector<in_flight> fallback;
  done.reserve(batch.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch != epoch_) return;  // a retired link's last frames
    last_rx_ = clock::now();
    bool scheduled_retry = false;
    for (cloud_transport::completion& c : batch) {
      auto it = in_flight_.find(c.id);
      // Already completed locally, or a duplicated completion frame
      // (fault injection / a confused peer): the first answer won.
      if (it == in_flight_.end()) continue;
      if (c.overloaded) {
        ++overloaded_;
        metric_overloaded_.add(1);
        ++overload_streak_;
        in_flight entry = std::move(it->second);
        in_flight_.erase(it);
        if (breaker_ == breaker_state::half_open) {
          // The probe itself was refused: the peer is alive but still
          // saturated — rest again without retiring the link.
          open_breaker_locked(/*retire=*/false, "half-open probe overloaded");
        } else if (breaker_ == breaker_state::closed &&
                   overload_streak_ >= config_.breaker_threshold) {
          open_breaker_locked(/*retire=*/false, "consecutive overloads");
        }
        // An overload's retry-after hint IS the cloud's queue-wait
        // estimate; fold it into the wait EMA the cut picker charges.
        if (c.retry_after_ms > 0.0) {
          cloud_wait_ema_ms_ = cloud_wait_ema_ms_ == 0.0
                                   ? c.retry_after_ms
                                   : 0.8 * cloud_wait_ema_ms_ +
                                         0.2 * c.retry_after_ms;
        }
        const clock::time_point now = clock::now();
        const clock::time_point due =
            now + from_ms(backoff_delay_ms(entry.attempts, c.retry_after_ms));
        // Another wire attempt only makes sense while the breaker is
        // closed and the backoff still fits inside the deadline;
        // otherwise the local fallback answers now.
        const bool viable = breaker_ == breaker_state::closed &&
                            entry.attempts < config_.max_retries &&
                            (entry.req.deadline == request::no_deadline ||
                             due < entry.req.deadline);
        if (viable) {
          ++retries_;
          metric_retries_.add(1);
          pending p;
          p.req = std::move(entry.req);
          p.on_complete = std::move(entry.on_complete);
          p.arrived = now;
          p.attempts = entry.attempts + 1;
          retry_queue_.emplace(due, std::move(p));
          scheduled_retry = true;
        } else {
          fallback.push_back(std::move(entry));
        }
      } else {
        // Any scored/expired/rejected answer proves the peer alive: the
        // overload streak resets and a half-open probe re-closes the
        // breaker even when its own cut was rejected.
        overload_streak_ = 0;
        if (breaker_ == breaker_state::half_open) {
          probe_in_flight_ = false;
          set_breaker_locked(breaker_state::closed);
          APPEAL_LOG_INFO("cloud_channel")
              << "circuit breaker closed; cloud link recovered"
              << util::kv("link", name_);
          wake_.notify_all();
        }
        if (c.rejected) {
          // The peer's model cannot score this cut; answer from the
          // local copy and never ship the cut again.
          in_flight entry = std::move(it->second);
          in_flight_.erase(it);
          reject_cut_locked(entry.req.split_cut);
          fallback.push_back(std::move(entry));
          continue;
        }
        if (c.cloud_queue_ms > 0.0) {
          cloud_wait_ema_ms_ = cloud_wait_ema_ms_ == 0.0
                                   ? c.cloud_queue_ms
                                   : 0.8 * cloud_wait_ema_ms_ +
                                         0.2 * c.cloud_queue_ms;
        }
        appeal_outcome outcome;
        outcome.prediction = c.prediction;
        outcome.cloud_ms = c.cloud_ms;
        outcome.cloud_queue_ms = c.cloud_queue_ms;
        outcome.cloud_score_ms = c.cloud_score_ms;
        outcome.expired = c.expired;
        done.emplace_back(std::move(it->second), outcome);
        in_flight_.erase(it);
      }
    }
    local_fallbacks_ += fallback.size();
    update_pressure_locked();
    if (scheduled_retry) wake_.notify_all();  // re-arm the retry timer
  }
  for (auto& [entry, outcome] : done) {
    finish(std::move(entry), outcome);
  }
  complete_locally(std::move(fallback));
}

void cloud_channel::on_link_failure(std::uint64_t epoch) {
  std::vector<in_flight> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (epoch != epoch_) return;  // the retired link died twice
    open_breaker_locked(/*retire=*/true, "transport failure");
    entries.reserve(in_flight_.size());
    for (auto it = in_flight_.begin(); it != in_flight_.end();) {
      // Entries pinned by an in-progress send stay: the coalescing
      // thread is still reading them through raw pointers and will
      // sweep them itself once send_batch returns (it sees the retired
      // transport).
      if (std::find(sending_ids_.begin(), sending_ids_.end(), it->first) !=
          sending_ids_.end()) {
        ++it;
        continue;
      }
      entries.push_back(std::move(it->second));
      it = in_flight_.erase(it);
    }
    local_fallbacks_ += entries.size();
    update_pressure_locked();
  }
  complete_locally(std::move(entries));
}

void cloud_channel::complete_locally(std::vector<in_flight>&& entries) {
  for (in_flight& entry : entries) {
    appeal_outcome outcome;
    {
      // The coalescing thread (failed-send sweep, watchdog, open-breaker
      // serving) and the transport's reader thread (link failure,
      // exhausted retries) can land here concurrently; a network
      // backend's forward is not thread-safe, so local scoring is
      // serialized. Cold path — this only runs when the cloud is
      // overloaded or gone.
      std::lock_guard<std::mutex> lock(fallback_mutex_);
      outcome.prediction = backend_.infer(entry.req);
    }
    finish(std::move(entry), outcome);
  }
}

void cloud_channel::finish(in_flight&& entry, appeal_outcome outcome) {
  outcome.link_ms = ms_since(entry.batched_at);
  if (entry.req.trace != nullptr) {
    obs::trace_span& span = *entry.req.trace;
    span.set(obs::stage::wire_tx, entry.tx_ms);
    span.set(obs::stage::cloud_queue, outcome.cloud_queue_ms);
    span.set(obs::stage::cloud_score, outcome.cloud_score_ms);
    // The rest of the link round trip. The cloud stages are durations on
    // the cloud's clock, so no cross-clock sync is needed; set() clamps
    // a negative remainder (clock disagreement) to 0, which shows up as
    // a reconciliation gap in tools/trace_report rather than a negative
    // stage.
    span.set(obs::stage::wire_rx,
             outcome.link_ms - entry.tx_ms - outcome.cloud_queue_ms -
                 outcome.cloud_score_ms);
  }
  entry.on_complete(std::move(entry.req), outcome);
  std::lock_guard<std::mutex> lock(mutex_);
  ++completed_;
  --outstanding_;
  if (outstanding_ == 0) drained_.notify_all();
}

}  // namespace appeal::serve
