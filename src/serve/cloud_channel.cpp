#include "serve/cloud_channel.hpp"

#include "util/error.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

clock::duration scaled_ms(double ms, double scale) {
  return std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double, std::milli>(ms * scale));
}

}  // namespace

cloud_channel::cloud_channel(cloud_backend& backend,
                             const collab::cost_model& link,
                             const link_config& cfg)
    : backend_(backend),
      transmit_ms_(link.input_kb * link.comm_ms_per_kb),
      // Propagation + cloud compute = the cost model's offload latency
      // minus the transmit share (L(0) - L(1) is the full offload term).
      overlap_ms_(link.overall_latency_ms(0.0) - link.overall_latency_ms(1.0) -
                  link.input_kb * link.comm_ms_per_kb),
      time_scale_(cfg.time_scale) {
  APPEAL_CHECK(time_scale_ >= 0.0, "time_scale must be non-negative");
  link_free_at_ = clock::now();
  worker_ = std::thread([this] { run(); });
}

cloud_channel::~cloud_channel() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  worker_.join();
}

void cloud_channel::appeal(request&& r, completion_fn on_complete) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    APPEAL_CHECK(!stopping_, "appeal() after channel shutdown");
    pending_.push(pending{std::move(r), std::move(on_complete)});
    ++outstanding_;
  }
  wake_.notify_all();
}

void cloud_channel::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

std::size_t cloud_channel::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

void cloud_channel::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // Move every pending appeal onto the simulated link. Transmissions
    // serialize (link_free_at_); propagation + cloud compute overlap.
    while (!pending_.empty()) {
      pending p = std::move(pending_.front());
      pending_.pop();
      const auto now = clock::now();
      const auto send_start = std::max(now, link_free_at_);
      const auto send_end = send_start + scaled_ms(transmit_ms_, time_scale_);
      link_free_at_ = send_end;
      in_flight f;
      f.complete_at = send_end + scaled_ms(overlap_ms_, time_scale_);
      f.link_ms = std::chrono::duration<double, std::milli>(f.complete_at -
                                                            now)
                      .count();
      f.on_complete = std::move(p.on_complete);
      lock.unlock();
      // Run the big network off-lock: it may be arbitrarily expensive.
      const std::size_t prediction = backend_.infer(p.req);
      lock.lock();
      f.prediction = prediction;
      f.req = std::move(p.req);
      in_flight_.push(std::move(f));
    }

    if (!in_flight_.empty()) {
      // Completion deadlines are FIFO: every appeal adds the same overlap
      // on top of a monotone send_end, so the front is always due first.
      const auto due = in_flight_.front().complete_at;
      if (clock::now() < due) {
        wake_.wait_until(lock, due);
        continue;  // re-check pending work after the wait
      }
      in_flight f = std::move(in_flight_.front());
      in_flight_.pop();
      lock.unlock();
      f.on_complete(std::move(f.req), f.prediction, f.link_ms);
      lock.lock();
      ++completed_;
      --outstanding_;
      if (outstanding_ == 0) drained_.notify_all();
      continue;
    }

    if (stopping_) return;
    wake_.wait(lock, [&] {
      return stopping_ || !pending_.empty() || !in_flight_.empty();
    });
  }
}

}  // namespace appeal::serve
