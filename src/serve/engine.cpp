#include "serve/engine.hpp"

#include <chrono>

#include "util/error.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

engine::engine(const engine_config& cfg, edge_backend& edge,
               cloud_backend& cloud)
    : engine(cfg, std::vector<edge_backend*>(cfg.num_workers, &edge), cloud) {}

engine::engine(const engine_config& cfg,
               std::vector<edge_backend*> per_worker_edge,
               cloud_backend& cloud)
    : config_(cfg),
      edge_backends_(std::move(per_worker_edge)),
      queue_(cfg.queue_capacity),
      controller_(cfg.threshold, &config_.link),
      stats_(cfg.stats),
      channel_(cloud, cfg.link, cfg.channel) {
  APPEAL_CHECK(config_.num_workers > 0, "engine needs at least one worker");
  APPEAL_CHECK(edge_backends_.size() == config_.num_workers,
               "one edge backend per worker required");
  for (edge_backend* backend : edge_backends_) {
    APPEAL_CHECK(backend != nullptr, "edge backend must not be null");
  }
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back(
        [this, w] { worker_loop(*edge_backends_[w]); });
  }
}

engine::~engine() { shutdown(); }

std::future<response> engine::submit(tensor input, std::uint64_t key,
                                     std::size_t label) {
  request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(input);
  r.key = key;
  r.label = label;
  r.enqueue_time = clock::now();
  std::future<response> future = r.promise.get_future();
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (!queue_.push(std::move(r))) {
    if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(drain_mutex_);
      drained_.notify_all();
    }
    throw util::error("submit() on a shut-down engine");
  }
  return future;
}

void engine::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) t.join();
  channel_.drain();
}

void engine::complete(request&& r, response&& resp) {
  const bool labeled = r.label != request::no_label;
  const bool correct = labeled && resp.predicted_class == r.label;
  resp.latency_ms = ms_between(r.enqueue_time, clock::now());
  stats_.record(resp, labeled, correct);
  r.promise.set_value(std::move(resp));
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

void engine::worker_loop(edge_backend& edge) {
  batcher form(queue_, config_.batching);
  const double edge_ms = config_.link.overall_latency_ms(1.0);
  for (;;) {
    batch b = form.next_batch();
    if (b.empty()) return;  // queue closed and drained

    const edge_inference inference = edge.infer(b.requests);
    APPEAL_CHECK(inference.predictions.size() == b.requests.size() &&
                     inference.scores.size() == b.requests.size(),
                 "edge backend must return one result per request");

    if (config_.simulate_edge_compute) {
      const double scaled = edge_ms * config_.channel.time_scale;
      if (scaled > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(scaled));
      }
    }

    // One δ for the whole batch: the decision the paper's predictor head
    // makes per input, applied at batch granularity.
    const double delta = controller_.delta();
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < b.requests.size(); ++i) {
      request& r = b.requests[i];
      const double score = inference.scores[i];
      const double queue_ms = ms_between(r.enqueue_time, r.dequeue_time);
      if (score >= delta) {
        ++skipped;
        response resp;
        resp.id = r.id;
        resp.predicted_class = inference.predictions[i];
        resp.taken = route::edge;
        resp.score = score;
        resp.delta = delta;
        resp.queue_ms = queue_ms;
        complete(std::move(r), std::move(resp));
      } else {
        channel_.appeal(
            std::move(r),
            [this, score, delta, queue_ms](request&& done,
                                           std::size_t prediction,
                                           double link_ms) {
              response resp;
              resp.id = done.id;
              resp.predicted_class = prediction;
              resp.taken = route::cloud;
              resp.score = score;
              resp.delta = delta;
              resp.queue_ms = queue_ms;
              resp.link_ms = link_ms;
              complete(std::move(done), std::move(resp));
            });
      }
    }
    controller_.observe(inference.scores, skipped);
  }
}

}  // namespace appeal::serve
