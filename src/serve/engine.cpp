#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "util/error.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Applies cfg.gemm_threads (process-global, last writer wins) and keeps
/// the appeal_gemm_threads gauge telling the truth about what is in
/// force — whether this engine set it or an earlier one / the
/// APPEAL_GEMM_THREADS environment did.
void apply_gemm_threads(const engine_config& cfg) {
  if (cfg.gemm_threads > 0) ops::set_gemm_threads(cfg.gemm_threads);
  obs::default_registry()
      .get_gauge("appeal_gemm_threads", {},
                 "intra-GEMM parallelism of edge forwards (process-global)")
      .set(static_cast<double>(ops::gemm_threads()));
}

}  // namespace

engine::engine(const engine_config& cfg, edge_backend& edge,
               cloud_backend& cloud)
    : config_(cfg),
      sampler_(cfg.trace_sample_rate),
      edge_backends_(cfg.num_workers, &edge),
      queue_(cfg.queue_capacity),
      owned_controller_(
          std::make_unique<threshold_controller>(cfg.threshold, &config_.link)),
      owned_stats_(std::make_unique<serve_stats>(cfg.stats)),
      owned_channel_(
          std::make_unique<cloud_channel>(cloud, config_.link, cfg.channel)),
      controller_(owned_controller_.get()),
      stats_(owned_stats_.get()),
      channel_(owned_channel_.get()),
      admission_(cfg.admission) {
  start_workers();
}

engine::engine(const engine_config& cfg, worker_edge_factory edge_factory,
               std::function<std::unique_ptr<cloud_backend>()> cloud_factory)
    : config_(cfg),
      sampler_(cfg.trace_sample_rate),
      queue_(cfg.queue_capacity),
      owned_controller_(
          std::make_unique<threshold_controller>(cfg.threshold, &config_.link)),
      owned_stats_(std::make_unique<serve_stats>(cfg.stats)),
      controller_(owned_controller_.get()),
      stats_(owned_stats_.get()),
      admission_(cfg.admission) {
  APPEAL_CHECK(edge_factory != nullptr && cloud_factory != nullptr,
               "engine backend factories must not be null");
  owned_edge_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    owned_edge_.push_back(edge_factory(w));
  }
  owned_cloud_ = cloud_factory();
  APPEAL_CHECK(owned_cloud_ != nullptr, "cloud factory returned null");
  for (const auto& backend : owned_edge_) {
    edge_backends_.push_back(backend.get());
  }
  owned_channel_ = std::make_unique<cloud_channel>(*owned_cloud_, config_.link,
                                                   config_.channel);
  channel_ = owned_channel_.get();
  start_workers();
}

engine::engine(const engine_config& cfg,
               std::vector<std::unique_ptr<edge_backend>> per_worker_edge,
               cloud_channel& channel, threshold_controller& controller,
               serve_stats& stats)
    : config_(cfg),
      sampler_(cfg.trace_sample_rate),
      owned_edge_(std::move(per_worker_edge)),
      queue_(cfg.queue_capacity),
      controller_(&controller),
      stats_(&stats),
      channel_(&channel),
      admission_(cfg.admission) {
  for (const auto& backend : owned_edge_) {
    edge_backends_.push_back(backend.get());
  }
  start_workers();
}

void engine::start_workers() {
  apply_gemm_threads(config_);
  APPEAL_CHECK(config_.num_workers > 0, "engine needs at least one worker");
  APPEAL_CHECK(edge_backends_.size() == config_.num_workers,
               "one edge backend per worker required");
  for (edge_backend* backend : edge_backends_) {
    APPEAL_CHECK(backend != nullptr, "edge backend must not be null");
  }
  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(*edge_backends_[w]); });
  }
}

engine::~engine() { shutdown(); }

std::future<response> engine::submit(tensor input, std::uint64_t key,
                                     std::size_t label) {
  inference_request req;
  req.input = std::move(input);
  req.key = key;
  req.label = label;
  return submit(std::move(req));
}

std::future<response> engine::submit(inference_request&& req) {
  request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(req.input);
  r.key = req.key;
  r.label = req.label;
  r.priority = req.priority;
  r.enqueue_time = clock::now();
  // Zero means "no deadline"; a negative remaining budget (client's SLO
  // already blown) becomes a deadline in the past and expires at dequeue.
  if (req.deadline.count() != 0) r.deadline = r.enqueue_time + req.deadline;
  r.trace = sampler_.sample(r.key, r.enqueue_time);
  std::future<response> future = r.promise.get_future();
  // Mirror the cloud link's health into admission: with the breaker open
  // or an overload streak in progress, batch headroom tightens and
  // edge_only degrades early instead of queueing appeals for a sick
  // uplink. Polled here (one relaxed load) rather than pushed so the
  // signal is fresh at every admission decision.
  admission_.set_cloud_pressure(channel_->under_pressure());
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  switch (admission_.try_admit(queue_, r)) {
    case admission_verdict::admitted:
    case admission_verdict::degraded:
      return future;
    case admission_verdict::shed: {
      response resp;
      resp.id = r.id;
      resp.status = request_status::shed;
      resp.shard = config_.shard_id;
      complete(std::move(r), std::move(resp));
      return future;
    }
    case admission_verdict::closed:
      break;
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
  throw util::error("submit() on a shut-down engine");
}

stats_snapshot engine::snapshot() const {
  stats_snapshot s = stats_->snapshot();
  apply_link_counters(s, channel_->counters().since(link_baseline_));
  return s;
}

void engine::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (std::thread& t : workers_) t.join();
  channel_->drain();
}

void engine::complete(request&& r, response&& resp) {
  const bool labeled =
      resp.status == request_status::ok && r.label != request::no_label;
  const bool correct = labeled && resp.predicted_class == r.label;
  resp.latency_ms = ms_between(r.enqueue_time, clock::now());
  if (r.trace != nullptr) {
    obs::trace_span& span = *r.trace;
    span.total_ms = resp.latency_ms;
    span.appealed = resp.taken == route::cloud;
    span.expired = resp.status == request_status::expired;
    // Whatever the stamped stages do not account for (demux, stats,
    // promise fulfillment, scheduling gaps between boundaries) is the
    // final stage, so the stages always sum to ~total and trace_report's
    // reconciliation check is meaningful.
    span.set(obs::stage::complete, span.total_ms - span.stage_sum());
    obs::default_collector().record(std::move(span));
    r.trace.reset();
  }
  stats_->record(resp, labeled, correct);
  r.promise.set_value(std::move(resp));
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

void engine::worker_loop(edge_backend& edge) {
  batcher form(queue_, config_.batching);
  const double edge_ms = config_.link.overall_latency_ms(1.0);
  for (;;) {
    batch b = form.next_batch();
    if (b.empty()) return;  // queue closed and drained

    // Expire requests whose deadline passed while queued: no inference,
    // the client gets an immediate `expired` status.
    std::vector<request> live;
    live.reserve(b.requests.size());
    const clock::time_point now = clock::now();
    for (request& r : b.requests) {
      if (r.deadline != request::no_deadline && now > r.deadline) {
        response resp;
        resp.id = r.id;
        resp.status = request_status::expired;
        resp.shard = config_.shard_id;
        resp.queue_ms = ms_between(r.enqueue_time, r.dequeue_time);
        if (r.trace != nullptr) {
          r.trace->set(obs::stage::queue_wait, resp.queue_ms);
        }
        complete(std::move(r), std::move(resp));
      } else {
        live.push_back(std::move(r));
      }
    }
    if (live.empty()) continue;

    const clock::time_point infer_start = clock::now();
    for (request& r : live) {
      if (r.trace != nullptr) {
        r.trace->set(obs::stage::queue_wait,
                     ms_between(r.enqueue_time, r.dequeue_time));
        r.trace->set(obs::stage::batch_form,
                     ms_between(r.dequeue_time, infer_start));
      }
    }

    const edge_inference inference = edge.infer(live);
    APPEAL_CHECK(inference.predictions.size() == live.size() &&
                     inference.scores.size() == live.size(),
                 "edge backend must return one result per request");

    if (config_.simulate_edge_compute) {
      const double scaled = edge_ms * config_.channel.time_scale;
      if (scaled > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(scaled));
      }
    }
    // The simulated accelerator pass (when on) is part of the edge
    // forward as far as attribution goes.
    const clock::time_point infer_end = clock::now();
    for (request& r : live) {
      if (r.trace != nullptr) {
        r.trace->set(obs::stage::edge_infer,
                     ms_between(infer_start, infer_end));
      }
    }

    // One δ for the whole batch: the decision the paper's predictor head
    // makes per input, applied at batch granularity. Degraded-admission
    // requests bypass the decision entirely (they may never appeal) and
    // are excluded from the controller's observation — both the skip
    // count and the score denominator — so observed_sr stays the rate
    // over δ-decided traffic.
    const bool any_forced =
        std::any_of(live.begin(), live.end(),
                    [](const request& r) { return r.force_edge; });
    std::vector<double> decided_scores;
    if (any_forced) {
      decided_scores.reserve(live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (!live[i].force_edge) decided_scores.push_back(inference.scores[i]);
      }
    }
    const double delta = controller_->delta();
    std::size_t skipped = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      request& r = live[i];
      const double score = inference.scores[i];
      const double queue_ms = ms_between(r.enqueue_time, r.dequeue_time);
      if (r.trace != nullptr) {
        r.trace->set(obs::stage::decide, ms_between(infer_end, clock::now()));
      }
      if (r.force_edge || score >= delta) {
        response resp;
        resp.id = r.id;
        resp.predicted_class = inference.predictions[i];
        resp.taken = r.force_edge ? route::edge_degraded : route::edge;
        resp.shard = config_.shard_id;
        resp.score = score;
        resp.delta = delta;
        resp.queue_ms = queue_ms;
        if (!r.force_edge) ++skipped;
        complete(std::move(r), std::move(resp));
      } else {
        channel_->appeal(
            std::move(r),
            [this, score, delta, queue_ms](request&& done,
                                           const appeal_outcome& outcome) {
              response resp;
              resp.id = done.id;
              resp.taken = route::cloud;
              resp.shard = config_.shard_id;
              resp.score = score;
              resp.delta = delta;
              resp.queue_ms = queue_ms;
              resp.link_ms = outcome.link_ms;
              resp.cloud_ms = outcome.cloud_ms;
              // Feed the measured offload round trip back into the
              // latency-SLO controller (no-op in the other modes): a
              // cloud_ms spike backs δ off toward edge-only and it
              // recovers when the link normalizes.
              controller_->observe_cloud_ms(outcome.link_ms);
              if (outcome.expired) {
                // The cloud shed the appeal (deadline blown in its work
                // queue): the client gets an honest `expired`, not a
                // fabricated prediction.
                resp.status = request_status::expired;
              } else {
                resp.predicted_class = outcome.prediction;
              }
              complete(std::move(done), std::move(resp));
            });
      }
    }
    controller_->observe(any_forced ? decided_scores : inference.scores,
                         skipped);
  }
}

}  // namespace appeal::serve
