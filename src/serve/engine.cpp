#include "serve/engine.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "tensor/gemm.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace appeal::serve {

namespace {

using clock = std::chrono::steady_clock;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Applies cfg.gemm_threads (process-global, last writer wins) and keeps
/// the appeal_gemm_threads gauge telling the truth about what is in
/// force — whether this engine set it or an earlier one / the
/// APPEAL_GEMM_THREADS environment did. A conflicting request is logged
/// (with both deployments named) instead of silently clobbered.
void apply_gemm_threads(const engine_config& cfg) {
  if (cfg.gemm_threads > 0) {
    static std::mutex mutex;
    static std::size_t last_value = 0;
    static std::string last_owner;
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (last_value != 0 && last_value != cfg.gemm_threads) {
        APPEAL_LOG_WARN("engine")
            << "gemm_threads conflict: the GEMM pool is process-global and "
               "the last writer wins"
            << util::kv("in_force", last_value)
            << util::kv("in_force_deployment", last_owner)
            << util::kv("requested", cfg.gemm_threads)
            << util::kv("deployment", cfg.stats.deployment);
      }
      last_value = cfg.gemm_threads;
      last_owner = cfg.stats.deployment;
    }
    ops::set_gemm_threads(cfg.gemm_threads);
  }
  obs::default_registry()
      .get_gauge("appeal_gemm_threads", {},
                 "intra-GEMM parallelism of edge forwards (process-global)")
      .set(static_cast<double>(ops::gemm_threads()));
}

/// Resolves the per-worker backend pointers from an engine_resources:
/// one shared backend fanned out, or exactly one owned backend per
/// worker.
std::vector<edge_backend*> resolve_edge_backends(
    edge_backend* shared, const std::vector<std::unique_ptr<edge_backend>>& owned,
    std::size_t num_workers) {
  APPEAL_CHECK(num_workers > 0, "engine needs at least one worker");
  std::vector<edge_backend*> backends;
  backends.reserve(num_workers);
  if (shared != nullptr) {
    APPEAL_CHECK(owned.empty(),
                 "engine_resources: shared_edge excludes owned_edge");
    backends.assign(num_workers, shared);
    return backends;
  }
  APPEAL_CHECK(owned.size() == num_workers,
               "one edge backend per worker required");
  for (const auto& backend : owned) {
    APPEAL_CHECK(backend != nullptr, "edge backend must not be null");
    backends.push_back(backend.get());
  }
  return backends;
}

/// Builds the engine-owned channel when no shared one was supplied.
std::unique_ptr<cloud_channel> resolve_channel(const engine_resources& res,
                                               cloud_backend* owned_cloud,
                                               const engine_config& cfg) {
  if (res.shared_channel != nullptr) return nullptr;
  cloud_backend* cloud =
      res.shared_cloud != nullptr ? res.shared_cloud : owned_cloud;
  APPEAL_CHECK(cloud != nullptr,
               "engine needs a cloud backend or a shared channel");
  return std::make_unique<cloud_channel>(*cloud, cfg.link, cfg.channel);
}

}  // namespace

engine_resources engine_resources::standalone(edge_backend& edge,
                                              cloud_backend& cloud) {
  engine_resources res;
  res.shared_edge = &edge;
  res.shared_cloud = &cloud;
  return res;
}

engine_resources engine_resources::owning(
    const engine_config& cfg, const worker_edge_factory& edge_factory,
    const std::function<std::unique_ptr<cloud_backend>()>& cloud_factory) {
  APPEAL_CHECK(edge_factory != nullptr && cloud_factory != nullptr,
               "engine backend factories must not be null");
  engine_resources res;
  res.owned_edge.reserve(cfg.num_workers);
  for (std::size_t w = 0; w < cfg.num_workers; ++w) {
    res.owned_edge.push_back(edge_factory(w));
  }
  res.owned_cloud = cloud_factory();
  APPEAL_CHECK(res.owned_cloud != nullptr, "cloud factory returned null");
  return res;
}

engine_resources engine_resources::shard(
    std::vector<std::unique_ptr<edge_backend>> per_worker_edge,
    cloud_channel& channel, threshold_controller& controller,
    serve_stats& stats) {
  engine_resources res;
  res.owned_edge = std::move(per_worker_edge);
  res.shared_channel = &channel;
  res.shared_controller = &controller;
  res.shared_stats = &stats;
  return res;
}

engine::engine(const engine_config& cfg, engine_resources&& res)
    : config_(cfg),
      sampler_(cfg.trace_sample_rate),
      owned_edge_(std::move(res.owned_edge)),
      owned_cloud_(std::move(res.owned_cloud)),
      edge_backends_(resolve_edge_backends(res.shared_edge, owned_edge_,
                                           cfg.num_workers)),
      queue_(cfg.queue_capacity),
      owned_controller_(res.shared_controller != nullptr
                            ? nullptr
                            : std::make_unique<threshold_controller>(
                                  cfg.threshold, &config_.link)),
      owned_stats_(res.shared_stats != nullptr
                       ? nullptr
                       : std::make_unique<serve_stats>(cfg.stats)),
      owned_channel_(resolve_channel(res, owned_cloud_.get(), config_)),
      controller_(res.shared_controller != nullptr ? res.shared_controller
                                                   : owned_controller_.get()),
      stats_(res.shared_stats != nullptr ? res.shared_stats
                                         : owned_stats_.get()),
      channel_(res.shared_channel != nullptr ? res.shared_channel
                                             : owned_channel_.get()),
      admission_(cfg.admission),
      cloud_node_(cfg.stats.deployment, *channel_, *controller_, cfg.shard_id,
                  cfg.pipeline.appeal_queue_depth, completion()),
      decide_node_(cfg.stats.deployment, *controller_, cfg.shard_id,
                   cfg.pipeline.decide_queue_depth, cloud_node_.input(),
                   completion()),
      edge_node_(cfg.stats.deployment, edge_backends_,
                 cfg.simulate_edge_compute,
                 config_.link.overall_latency_ms(1.0),
                 cfg.channel.time_scale, cfg.pipeline.batch_queue_depth,
                 decide_node_.input()),
      batch_node_(cfg.stats.deployment, queue_, cfg.batching,
                  edge_node_.input()),
      ingress_node_(cfg.stats.deployment, admission_, queue_, cfg.shard_id,
                    completion()) {
  apply_gemm_threads(config_);
  graph_.add(ingress_node_);
  graph_.add(batch_node_);
  graph_.add(edge_node_);
  graph_.add(decide_node_);
  graph_.add(cloud_node_);
  graph_.start_all();
}

engine::~engine() { shutdown(); }

pipeline::complete_fn engine::completion() {
  return [this](request&& r, response&& resp) {
    complete(std::move(r), std::move(resp));
  };
}

std::future<response> engine::submit(inference_request&& req) {
  request r;
  r.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  r.input = std::move(req.input);
  r.key = req.key;
  r.label = req.label;
  r.priority = req.priority;
  r.enqueue_time = clock::now();
  // Zero means "no deadline"; a negative remaining budget (client's SLO
  // already blown) becomes a deadline in the past and expires at dequeue.
  if (req.deadline.count() != 0) r.deadline = r.enqueue_time + req.deadline;
  r.trace = sampler_.sample(r.key, r.enqueue_time);
  std::future<response> future = r.promise.get_future();
  // Mirror the cloud link's health into admission: with the breaker open
  // or an overload streak in progress, batch headroom tightens and
  // edge_only degrades early instead of queueing appeals for a sick
  // uplink. Polled here (one relaxed load) rather than pushed so the
  // signal is fresh at every admission decision.
  admission_.set_cloud_pressure(channel_->under_pressure());
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  if (ingress_node_.submit(std::move(r)) != admission_verdict::closed) {
    return future;  // admitted, degraded, or shed-and-completed
  }
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
  throw util::error("submit() on a shut-down engine");
}

stats_snapshot engine::snapshot() const {
  stats_snapshot s = stats_->snapshot();
  apply_link_counters(s, channel_->counters().since(link_baseline_));
  return s;
}

void engine::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void engine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Topological drain: each stage's input closes only after the previous
  // stage finished pushing into it, so nothing in flight is stranded;
  // the channel drain then waits out the appeals the sink handed off.
  graph_.drain_and_stop();
  channel_->drain();
}

void engine::complete(request&& r, response&& resp) {
  const bool labeled =
      resp.status == request_status::ok && r.label != request::no_label;
  const bool correct = labeled && resp.predicted_class == r.label;
  resp.latency_ms = ms_between(r.enqueue_time, clock::now());
  if (r.trace != nullptr) {
    obs::trace_span& span = *r.trace;
    span.total_ms = resp.latency_ms;
    span.appealed = resp.taken == route::cloud;
    span.expired = resp.status == request_status::expired;
    // Whatever the stamped stages do not account for (demux, stats,
    // promise fulfillment, scheduling gaps between boundaries) is the
    // final stage, so the stages always sum to ~total and trace_report's
    // reconciliation check is meaningful.
    span.set(obs::stage::complete, span.total_ms - span.stage_sum());
    obs::default_collector().record(std::move(span));
    r.trace.reset();
  }
  stats_->record(resp, labeled, correct);
  r.promise.set_value(std::move(resp));
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    drained_.notify_all();
  }
}

}  // namespace appeal::serve
