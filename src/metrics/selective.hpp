// Selective-prediction metrics: risk–coverage analysis and temperature
// scaling.
//
// The edge/cloud routing problem is a selective-prediction problem: the
// predictor "selects" inputs to answer on the edge (coverage = skipping
// rate) and the selective risk is the edge error rate on that subset. The
// risk–coverage curve and its area (AURC) summarize a score's routing
// quality across ALL thresholds — a threshold-free companion to Fig. 5.
//
// Temperature scaling (Guo et al., the calibration critique the paper
// cites) is included as the standard post-hoc fix for softmax confidence;
// the calibrated-MSP baseline quantifies how much of AppealNet's advantage
// survives when the baseline is given the best possible calibration.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::metrics {

/// One point of a risk-coverage curve.
struct risk_coverage_point {
  double coverage = 0.0;  // fraction of inputs answered (kept on edge)
  double risk = 0.0;      // error rate among answered inputs
};

/// Full risk-coverage curve: inputs sorted by descending score; point k
/// covers the k highest-scoring inputs. Scores follow higher-is-easier.
std::vector<risk_coverage_point> risk_coverage_curve(
    const std::vector<double>& scores, const std::vector<bool>& correct);

/// Area under the risk-coverage curve (lower = better ranking), averaged
/// over coverage levels 1/N ... 1.
double aurc(const std::vector<double>& scores,
            const std::vector<bool>& correct);

/// Selective risk at a specific coverage (linear interpolation between
/// curve points).
double risk_at_coverage(const std::vector<double>& scores,
                        const std::vector<bool>& correct, double coverage);

/// Fits a softmax temperature T > 0 minimizing NLL of `logits` against
/// `labels` (golden-section search on log T). T > 1 softens over-confident
/// models; T = 1 leaves them unchanged.
double fit_temperature(const tensor& logits,
                       const std::vector<std::size_t>& labels);

/// Returns softmax(logits / temperature) rows.
tensor apply_temperature(const tensor& logits, double temperature);

}  // namespace appeal::metrics
