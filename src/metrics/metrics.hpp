// Evaluation metrics for edge/cloud collaborative inference.
//
// Direct implementations of the paper's Section VI definitions:
//   Eq. 11  skipping rate  SR(δ)  = fraction with q(1|x) >= δ
//   Eq. 12  appealing rate AR(δ)  = 1 - SR(δ)
//   Eq. 13  overall collaborative accuracy
//   Eq. 14  relative accuracy improvement AccI
//   Eq. 15  overall computational cost
// plus separation/calibration statistics used to quantify Fig. 4.
#pragma once

#include <cstddef>
#include <vector>

namespace appeal::metrics {

/// Plain classification accuracy; vectors must be the same non-zero length.
double accuracy(const std::vector<std::size_t>& predictions,
                const std::vector<std::size_t>& labels);

/// Eq. 11: fraction of inputs the predictor keeps on the edge
/// (score >= delta). Scores follow the paper's convention: higher = easier.
double skipping_rate(const std::vector<double>& scores, double delta);

/// Eq. 12: fraction of inputs appealed to the cloud.
double appealing_rate(const std::vector<double>& scores, double delta);

/// Outcome of routing a labelled set through (little, big, predictor, δ).
struct collaborative_outcome {
  double overall_accuracy = 0.0;  // Eq. 13
  double skipping_rate = 0.0;     // Eq. 11
  std::size_t edge_correct = 0;   // kept on edge and correct
  std::size_t cloud_correct = 0;  // offloaded and correct
  std::size_t total = 0;
};

/// Evaluates Eq. 13 for a fixed threshold.
collaborative_outcome evaluate_collaborative(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels,
    const std::vector<double>& scores, double delta);

/// Eq. 14: (collab - little) / (big - little). Requires big != little
/// accuracy (the paper's settings always have a gap).
double relative_accuracy_improvement(double collaborative_accuracy,
                                     double little_accuracy,
                                     double big_accuracy);

/// Eq. 15: SR * c1 + (1 - SR) * c0, in whatever cost unit c0/c1 carry.
double overall_cost(double skipping_rate, double edge_cost, double cloud_cost);

/// Area under the ROC curve for a score meant to rank `positives` above
/// `negatives` (ties count half). 1.0 = perfect separation, 0.5 = chance.
/// Fig. 4's visual claim, quantified.
double auroc(const std::vector<double>& positive_scores,
             const std::vector<double>& negative_scores);

/// Expected calibration error of confidence scores against correctness,
/// with equal-width bins over [0, 1]. Motivates the paper's critique of
/// softmax confidence.
double expected_calibration_error(const std::vector<double>& confidences,
                                  const std::vector<bool>& correct,
                                  std::size_t bins = 10);

/// Dense confusion matrix.
class confusion_matrix {
 public:
  explicit confusion_matrix(std::size_t num_classes);

  void add(std::size_t predicted, std::size_t actual);
  void add_all(const std::vector<std::size_t>& predictions,
               const std::vector<std::size_t>& labels);

  std::size_t at(std::size_t predicted, std::size_t actual) const;
  std::size_t num_classes() const { return num_classes_; }
  std::size_t total() const { return total_; }
  double accuracy() const;
  /// Recall of one class (0 when the class never occurs).
  double recall(std::size_t cls) const;

 private:
  std::size_t num_classes_;
  std::vector<std::size_t> cells_;  // [predicted * K + actual]
  std::size_t total_ = 0;
};

}  // namespace appeal::metrics
