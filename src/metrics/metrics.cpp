#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace appeal::metrics {

double accuracy(const std::vector<std::size_t>& predictions,
                const std::vector<std::size_t>& labels) {
  APPEAL_CHECK(!predictions.empty() && predictions.size() == labels.size(),
               "accuracy: prediction/label size mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double skipping_rate(const std::vector<double>& scores, double delta) {
  APPEAL_CHECK(!scores.empty(), "skipping_rate on empty scores");
  std::size_t kept = 0;
  for (const double s : scores) {
    if (s >= delta) ++kept;
  }
  return static_cast<double>(kept) / static_cast<double>(scores.size());
}

double appealing_rate(const std::vector<double>& scores, double delta) {
  return 1.0 - skipping_rate(scores, delta);
}

collaborative_outcome evaluate_collaborative(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels,
    const std::vector<double>& scores, double delta) {
  const std::size_t n = labels.size();
  APPEAL_CHECK(n > 0, "evaluate_collaborative on empty set");
  APPEAL_CHECK(little_predictions.size() == n && big_predictions.size() == n &&
                   scores.size() == n,
               "evaluate_collaborative: size mismatch");

  collaborative_outcome out;
  out.total = n;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (scores[i] >= delta) {
      ++kept;
      if (little_predictions[i] == labels[i]) ++out.edge_correct;
    } else if (big_predictions[i] == labels[i]) {
      ++out.cloud_correct;
    }
  }
  out.skipping_rate = static_cast<double>(kept) / static_cast<double>(n);
  out.overall_accuracy =
      static_cast<double>(out.edge_correct + out.cloud_correct) /
      static_cast<double>(n);
  return out;
}

double relative_accuracy_improvement(double collaborative_accuracy,
                                     double little_accuracy,
                                     double big_accuracy) {
  const double gap = big_accuracy - little_accuracy;
  APPEAL_CHECK(std::fabs(gap) > 1e-12,
               "AccI undefined: big and little accuracy are equal");
  return (collaborative_accuracy - little_accuracy) / gap;
}

double overall_cost(double skipping_rate, double edge_cost,
                    double cloud_cost) {
  APPEAL_CHECK(skipping_rate >= 0.0 && skipping_rate <= 1.0,
               "overall_cost: skipping rate outside [0, 1]");
  return skipping_rate * edge_cost + (1.0 - skipping_rate) * cloud_cost;
}

double auroc(const std::vector<double>& positive_scores,
             const std::vector<double>& negative_scores) {
  APPEAL_CHECK(!positive_scores.empty() && !negative_scores.empty(),
               "auroc requires both positive and negative scores");
  // Rank-sum (Mann-Whitney) formulation with tie handling via sorting the
  // negatives and binary-searching bounds for each positive.
  std::vector<double> neg = negative_scores;
  std::sort(neg.begin(), neg.end());
  double wins = 0.0;
  for (const double p : positive_scores) {
    const auto lower = std::lower_bound(neg.begin(), neg.end(), p);
    const auto upper = std::upper_bound(neg.begin(), neg.end(), p);
    const auto below = static_cast<double>(lower - neg.begin());
    const auto ties = static_cast<double>(upper - lower);
    wins += below + 0.5 * ties;
  }
  return wins / (static_cast<double>(positive_scores.size()) *
                 static_cast<double>(neg.size()));
}

double expected_calibration_error(const std::vector<double>& confidences,
                                  const std::vector<bool>& correct,
                                  std::size_t bins) {
  APPEAL_CHECK(!confidences.empty() && confidences.size() == correct.size(),
               "ECE: confidence/correct size mismatch");
  APPEAL_CHECK(bins > 0, "ECE requires at least one bin");

  std::vector<double> bin_conf(bins, 0.0);
  std::vector<double> bin_acc(bins, 0.0);
  std::vector<std::size_t> bin_count(bins, 0);
  for (std::size_t i = 0; i < confidences.size(); ++i) {
    const double c = std::clamp(confidences[i], 0.0, 1.0);
    auto b = static_cast<std::size_t>(c * static_cast<double>(bins));
    if (b == bins) b = bins - 1;
    bin_conf[b] += c;
    bin_acc[b] += correct[i] ? 1.0 : 0.0;
    ++bin_count[b];
  }
  double ece = 0.0;
  const auto n = static_cast<double>(confidences.size());
  for (std::size_t b = 0; b < bins; ++b) {
    if (bin_count[b] == 0) continue;
    const auto count = static_cast<double>(bin_count[b]);
    ece += (count / n) * std::fabs(bin_acc[b] / count - bin_conf[b] / count);
  }
  return ece;
}

confusion_matrix::confusion_matrix(std::size_t num_classes)
    : num_classes_(num_classes), cells_(num_classes * num_classes, 0) {
  APPEAL_CHECK(num_classes > 0, "confusion_matrix requires >= 1 class");
}

void confusion_matrix::add(std::size_t predicted, std::size_t actual) {
  APPEAL_CHECK(predicted < num_classes_ && actual < num_classes_,
               "confusion_matrix: class index out of range");
  ++cells_[predicted * num_classes_ + actual];
  ++total_;
}

void confusion_matrix::add_all(const std::vector<std::size_t>& predictions,
                               const std::vector<std::size_t>& labels) {
  APPEAL_CHECK(predictions.size() == labels.size(),
               "confusion_matrix: size mismatch");
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    add(predictions[i], labels[i]);
  }
}

std::size_t confusion_matrix::at(std::size_t predicted,
                                 std::size_t actual) const {
  APPEAL_CHECK(predicted < num_classes_ && actual < num_classes_,
               "confusion_matrix: class index out of range");
  return cells_[predicted * num_classes_ + actual];
}

double confusion_matrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t diagonal = 0;
  for (std::size_t k = 0; k < num_classes_; ++k) {
    diagonal += cells_[k * num_classes_ + k];
  }
  return static_cast<double>(diagonal) / static_cast<double>(total_);
}

double confusion_matrix::recall(std::size_t cls) const {
  APPEAL_CHECK(cls < num_classes_, "confusion_matrix: class out of range");
  std::size_t actual_total = 0;
  for (std::size_t p = 0; p < num_classes_; ++p) {
    actual_total += cells_[p * num_classes_ + cls];
  }
  if (actual_total == 0) return 0.0;
  return static_cast<double>(cells_[cls * num_classes_ + cls]) /
         static_cast<double>(actual_total);
}

}  // namespace appeal::metrics
