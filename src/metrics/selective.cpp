#include "metrics/selective.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::metrics {

std::vector<risk_coverage_point> risk_coverage_curve(
    const std::vector<double>& scores, const std::vector<bool>& correct) {
  const std::size_t n = scores.size();
  APPEAL_CHECK(n > 0 && correct.size() == n,
               "risk_coverage_curve: size mismatch or empty input");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::vector<risk_coverage_point> curve(n);
  std::size_t errors = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (!correct[order[k]]) ++errors;
    curve[k].coverage = static_cast<double>(k + 1) / static_cast<double>(n);
    curve[k].risk = static_cast<double>(errors) / static_cast<double>(k + 1);
  }
  return curve;
}

double aurc(const std::vector<double>& scores,
            const std::vector<bool>& correct) {
  const auto curve = risk_coverage_curve(scores, correct);
  double total = 0.0;
  for (const auto& point : curve) total += point.risk;
  return total / static_cast<double>(curve.size());
}

double risk_at_coverage(const std::vector<double>& scores,
                        const std::vector<bool>& correct, double coverage) {
  APPEAL_CHECK(coverage > 0.0 && coverage <= 1.0,
               "risk_at_coverage: coverage must be in (0, 1]");
  const auto curve = risk_coverage_curve(scores, correct);
  const auto n = static_cast<double>(curve.size());
  const double position = coverage * n;
  const auto upper = static_cast<std::size_t>(std::ceil(position));
  const std::size_t index = std::min(curve.size(), std::max<std::size_t>(1, upper)) - 1;
  return curve[index].risk;
}

namespace {

double nll_at_temperature(const tensor& logits,
                          const std::vector<std::size_t>& labels, double t) {
  const tensor scaled = appeal::ops::scale(logits, static_cast<float>(1.0 / t));
  const tensor log_probs = appeal::ops::log_softmax_rows(scaled);
  const std::size_t n = logits.dims().dim(0);
  const std::size_t k = logits.dims().dim(1);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total -= log_probs[i * k + labels[i]];
  }
  return total / static_cast<double>(n);
}

}  // namespace

double fit_temperature(const tensor& logits,
                       const std::vector<std::size_t>& labels) {
  APPEAL_CHECK(logits.dims().rank() == 2 &&
                   logits.dims().dim(0) == labels.size(),
               "fit_temperature: logits/labels mismatch");

  // Golden-section search over log T in [log 0.25, log 8].
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = std::log(0.25);
  double hi = std::log(8.0);
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = nll_at_temperature(logits, labels, std::exp(x1));
  double f2 = nll_at_temperature(logits, labels, std::exp(x2));
  for (int iter = 0; iter < 60; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = nll_at_temperature(logits, labels, std::exp(x1));
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = nll_at_temperature(logits, labels, std::exp(x2));
    }
  }
  return std::exp((lo + hi) / 2.0);
}

tensor apply_temperature(const tensor& logits, double temperature) {
  APPEAL_CHECK(temperature > 0.0, "temperature must be positive");
  return appeal::ops::softmax_rows(
      appeal::ops::scale(logits, static_cast<float>(1.0 / temperature)));
}

}  // namespace appeal::metrics
