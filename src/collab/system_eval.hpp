// System-level evaluation: accuracy-vs-skipping-rate sweeps over routing
// methods (the machinery behind Fig. 5 and Tables I/II).
#pragma once

#include <vector>

#include "core/scores.hpp"
#include "core/threshold.hpp"
#include "tensor/tensor.hpp"

namespace appeal::collab {

/// Everything needed to evaluate one (little, big, scores) system on a
/// labelled split, with predictions precomputed.
struct routed_split {
  std::vector<std::size_t> labels;
  std::vector<std::size_t> little_predictions;
  std::vector<std::size_t> big_predictions;
  std::vector<double> scores;  // higher = easier
};

/// Builds a routed_split from logits (+ labels); predictions are row argmax.
routed_split make_routed_split(const tensor& little_logits,
                               const tensor& big_logits,
                               const std::vector<std::size_t>& labels,
                               std::vector<double> scores);

/// One point of an accuracy-vs-SR curve.
struct sweep_point {
  double target_sr = 0.0;    // requested skipping rate
  double achieved_sr = 0.0;  // SR actually achieved on this split
  double accuracy = 0.0;     // Eq. 13
  double delta = 0.0;
};

/// Evaluates the split at each target skipping rate. When `tuning` is
/// non-null, δ is chosen on the tuning split (validation) and applied to
/// `eval` — the honest protocol used by all experiment benches.
std::vector<sweep_point> accuracy_vs_sr_curve(
    const routed_split& eval, const routed_split* tuning,
    const std::vector<double>& target_srs);

/// The paper's Fig. 5 skipping-rate grid {70, 75, ..., 100}%.
std::vector<double> paper_sr_grid();

/// The paper's Table I/II AccI targets {50, 75, 90, 95}%.
std::vector<double> paper_acci_targets();

}  // namespace appeal::collab
