// Cached experiment runner.
//
// Every paper table/figure consumes the same artifacts for a
// (dataset, edge-family, objective) triple:
//   - big-network logits on val/test,
//   - phase-1 ("standalone little", the baselines' model) logits,
//   - joint-trained two-head logits + q scores,
//   - per-sample latent difficulties and model costs.
// run_experiment() trains everything once per configuration and caches the
// outputs (keyed by the config's canonical string) so the four experiment
// benches and the ablations share work instead of retraining.
#pragma once

#include <string>

#include "core/joint_trainer.hpp"
#include "data/presets.hpp"
#include "models/model_spec.hpp"
#include "tensor/tensor.hpp"
#include "util/artifact_cache.hpp"

namespace appeal::collab {

/// One experiment = one trained (big, little, two-head) triple.
struct experiment_config {
  data::preset dataset = data::preset::cifar10_like;
  models::model_family edge_family = models::model_family::mobilenet;
  bool black_box = false;  // Eq. 10 objective instead of Eq. 9
  double beta = 0.05;      // joint-loss cost pressure
  std::uint64_t seed = 42;

  // Training budget (defaults are tuned per dataset by default_experiment).
  // Most of the little network's budget sits in the joint phase: the shared
  // features must learn difficulty, not only class identity (pretraining is
  // only the Algorithm 1 line-1 warm start).
  std::size_t big_epochs = 8;
  std::size_t pretrain_epochs = 8;
  std::size_t joint_epochs = 24;
  double joint_lr = 1e-3;
  std::size_t batch_size = 32;

  // Model scale knobs.
  float edge_width = 1.0F;
  std::size_t edge_depth = 1;
  float big_width = 0.75F;
  std::size_t big_depth = 2;

  // Train-time augmentation (shift + noise; flips are NOT label-preserving
  // for the grating prototypes, so they stay off).
  bool augment = true;

  bool verbose = false;

  /// Stable cache key (excludes `verbose`).
  std::string canonical() const;
};

/// Sensible defaults for a (dataset, family, objective) triple.
experiment_config default_experiment(data::preset dataset,
                                     models::model_family family,
                                     bool black_box);

/// Model outputs over one dataset split.
struct split_outputs {
  std::vector<std::size_t> labels;
  std::vector<float> difficulty;
  tensor big_logits;           // [N, K]
  tensor little_base_logits;   // phase-1 snapshot — the baselines' model
  tensor little_joint_logits;  // after joint training
  std::vector<float> q;        // predictor head scores q(1|x)
};

/// Everything the benches need.
struct experiment_outputs {
  split_outputs val;
  split_outputs test;
  double little_mflops = 0.0;  // two-head little network cost (c1)
  double big_mflops = 0.0;     // big network cost
  std::size_t num_classes = 0;

  // Headline accuracies on the test split.
  double little_base_accuracy = 0.0;
  double little_joint_accuracy = 0.0;
  double big_accuracy = 0.0;
};

/// Runs (or loads) an experiment. When `cache` is non-null, artifacts are
/// stored/loaded under the config's canonical key.
experiment_outputs run_experiment(const experiment_config& cfg,
                                  const util::artifact_cache* cache);

/// Builds the model specs an experiment uses (exposed for tests/benches).
models::model_spec edge_spec_for(const experiment_config& cfg);
models::model_spec big_spec_for(const experiment_config& cfg);

}  // namespace appeal::collab
