#include "collab/oracle.hpp"

namespace appeal::collab {

std::vector<std::size_t> oracle_predictions(const data::dataset& ds) {
  return dataset_labels(ds);
}

std::vector<std::size_t> dataset_labels(const data::dataset& ds) {
  std::vector<std::size_t> out(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out[i] = ds.get(i).label;
  }
  return out;
}

std::vector<float> dataset_difficulties(const data::dataset& ds) {
  std::vector<float> out(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out[i] = ds.get(i).difficulty;
  }
  return out;
}

}  // namespace appeal::collab
