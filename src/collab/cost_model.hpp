// Edge/cloud system cost model (paper Section IV-A + Eq. 15).
//
// The paper reduces per-input cost to two constants:
//   c1 = cost(f1, q): running the two-head little network on the edge,
//   c0 = cost(f0, q): running the little network (the predictor must run to
//        decide), plus uploading the input, plus the big network.
// Compute is measured in MFLOPs, communication in KB mapped to
// MFLOP-equivalents, and the energy model charges per-MFLOP and per-KB
// coefficients so the Eq. 15 cost translates into energy/latency estimates.
#pragma once

namespace appeal::collab {

/// Static per-system constants; see make_cost_model for a convenient setup.
struct cost_model {
  // Compute (MFLOPs per inference).
  double edge_mflops = 1.0;   // two-head little network (includes predictor)
  double cloud_mflops = 50.0; // big network

  // Communication.
  double input_kb = 3.0;              // raw input upload size
  double comm_mflops_per_kb = 1.0;    // comm cost in MFLOP-equivalents

  // Energy coefficients (millijoules).
  double edge_mj_per_mflop = 0.8;     // constrained edge silicon
  double cloud_mj_per_mflop = 0.15;   // datacenter accelerator
  double comm_mj_per_kb = 4.0;        // radio dominates offload energy

  // Latency coefficients.
  double edge_gflops = 1.0;           // edge device throughput
  double cloud_gflops = 50.0;         // cloud throughput
  double comm_ms_per_kb = 0.4;        // uplink
  double comm_round_trip_ms = 5.0;    // fixed network latency

  /// c1: per-input cost when kept on the edge (MFLOPs).
  double c1() const { return edge_mflops; }

  /// c0: per-input cost when appealed — predictor ran on the edge, input
  /// shipped, big network ran in the cloud (MFLOP-equivalents).
  double c0() const {
    return edge_mflops + input_kb * comm_mflops_per_kb + cloud_mflops;
  }

  /// Eq. 15: expected per-input compute cost at a given skipping rate.
  double overall_mflops(double skipping_rate) const;

  /// Expected per-input energy (mJ) at a given skipping rate.
  double overall_energy_mj(double skipping_rate) const;

  /// Expected per-input latency (ms) at a given skipping rate.
  double overall_latency_ms(double skipping_rate) const;

  /// Energy saving of operating at `sr` relative to cloud-only (SR = 0).
  double energy_saving_vs_cloud_only(double skipping_rate) const;
};

/// Builds a cost model from measured model costs; the remaining
/// coefficients take the defaults above.
cost_model make_cost_model(double edge_mflops, double cloud_mflops,
                           double input_kb);

}  // namespace appeal::collab
