#include "collab/cost_model.hpp"

#include "util/error.hpp"

namespace appeal::collab {

double cost_model::overall_mflops(double skipping_rate) const {
  APPEAL_CHECK(skipping_rate >= 0.0 && skipping_rate <= 1.0,
               "skipping rate outside [0, 1]");
  return skipping_rate * c1() + (1.0 - skipping_rate) * c0();
}

double cost_model::overall_energy_mj(double skipping_rate) const {
  APPEAL_CHECK(skipping_rate >= 0.0 && skipping_rate <= 1.0,
               "skipping rate outside [0, 1]");
  // Edge compute always runs (the predictor must execute for every input).
  const double edge = edge_mflops * edge_mj_per_mflop;
  // Offloaded fraction pays communication + cloud compute.
  const double offload = (1.0 - skipping_rate) *
                         (input_kb * comm_mj_per_kb +
                          cloud_mflops * cloud_mj_per_mflop);
  return edge + offload;
}

double cost_model::overall_latency_ms(double skipping_rate) const {
  APPEAL_CHECK(skipping_rate >= 0.0 && skipping_rate <= 1.0,
               "skipping rate outside [0, 1]");
  const double edge_ms = edge_mflops / (edge_gflops * 1e3) * 1e3;
  const double offload_ms = input_kb * comm_ms_per_kb + comm_round_trip_ms +
                            cloud_mflops / (cloud_gflops * 1e3) * 1e3;
  return edge_ms + (1.0 - skipping_rate) * offload_ms;
}

double cost_model::energy_saving_vs_cloud_only(double skipping_rate) const {
  const double cloud_only = overall_energy_mj(0.0);
  return 1.0 - overall_energy_mj(skipping_rate) / cloud_only;
}

cost_model make_cost_model(double edge_mflops, double cloud_mflops,
                           double input_kb) {
  APPEAL_CHECK(edge_mflops > 0.0 && cloud_mflops > 0.0 && input_kb >= 0.0,
               "cost model requires positive compute costs");
  cost_model model;
  model.edge_mflops = edge_mflops;
  model.cloud_mflops = cloud_mflops;
  model.input_kb = input_kb;
  return model;
}

}  // namespace appeal::collab
