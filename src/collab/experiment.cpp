#include "collab/experiment.hpp"

#include <sstream>

#include "collab/oracle.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace appeal::collab {

std::string experiment_config::canonical() const {
  std::ostringstream os;
  os << "exp-v6"
     << "-ds=" << data::preset_name(dataset)
     << "-edge=" << models::family_name(edge_family)
     << "-bb=" << (black_box ? 1 : 0)
     << "-beta=" << util::format_fixed(beta, 4) << "-seed=" << seed
     << "-be=" << big_epochs << "-pe=" << pretrain_epochs
     << "-je=" << joint_epochs << "-jlr=" << util::format_fixed(joint_lr, 5)
     << "-bs=" << batch_size
     << "-ew=" << util::format_fixed(edge_width, 3) << "-ed=" << edge_depth
     << "-bw=" << util::format_fixed(big_width, 3) << "-bd=" << big_depth
     << "-aug=" << (augment ? 1 : 0);
  return os.str();
}

experiment_config default_experiment(data::preset dataset,
                                     models::model_family family,
                                     bool black_box) {
  experiment_config cfg;
  cfg.dataset = dataset;
  cfg.edge_family = family;
  cfg.black_box = black_box;
  switch (dataset) {
    case data::preset::gtsrb_like:
    case data::preset::cifar10_like:
      break;  // defaults
    case data::preset::cifar100_like:
      cfg.big_epochs = 10;
      cfg.pretrain_epochs = 10;
      cfg.joint_epochs = 22;
      break;
    case data::preset::tiny_imagenet_like:
      cfg.big_epochs = 10;
      cfg.pretrain_epochs = 10;
      cfg.joint_epochs = 20;
      break;
  }
  return cfg;
}

models::model_spec edge_spec_for(const experiment_config& cfg) {
  const data::synthetic_config base = data::preset_config(cfg.dataset, cfg.seed);
  models::model_spec spec;
  spec.family = cfg.edge_family;
  spec.in_channels = base.channels;
  spec.image_size = base.image_size;
  spec.num_classes = base.num_classes;
  spec.width = cfg.edge_width;
  spec.depth = cfg.edge_depth;
  return spec;
}

models::model_spec big_spec_for(const experiment_config& cfg) {
  const data::synthetic_config base = data::preset_config(cfg.dataset, cfg.seed);
  models::model_spec spec;
  spec.family = models::model_family::resnet;
  spec.in_channels = base.channels;
  spec.image_size = base.image_size;
  spec.num_classes = base.num_classes;
  spec.width = cfg.big_width;
  spec.depth = cfg.big_depth;
  return spec;
}

namespace {

/// Converts an index/float vector into a tensor for cache serialization.
tensor to_tensor(const std::vector<std::size_t>& values) {
  tensor out(shape{values.size()});
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = static_cast<float>(values[i]);
  }
  return out;
}

tensor to_tensor(const std::vector<float>& values) {
  tensor out(shape{values.size()});
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = values[i];
  return out;
}

std::vector<std::size_t> to_indices(const tensor& t) {
  std::vector<std::size_t> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    out[i] = static_cast<std::size_t>(t[i]);
  }
  return out;
}

std::vector<float> to_floats(const tensor& t) {
  std::vector<float> out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = t[i];
  return out;
}

/// Cache layout: a flat list of named tensors for both splits plus meta.
struct cache_image {
  tensor val_labels, val_difficulty, val_big, val_base, val_joint, val_q;
  tensor test_labels, test_difficulty, test_big, test_base, test_joint,
      test_q;
  tensor meta;  // [3]: little_mflops, big_mflops, num_classes

  std::vector<nn::named_tensor> names() {
    return {
        {"val.labels", &val_labels},       {"val.difficulty", &val_difficulty},
        {"val.big", &val_big},             {"val.base", &val_base},
        {"val.joint", &val_joint},         {"val.q", &val_q},
        {"test.labels", &test_labels},     {"test.difficulty", &test_difficulty},
        {"test.big", &test_big},           {"test.base", &test_base},
        {"test.joint", &test_joint},       {"test.q", &test_q},
        {"meta", &meta},
    };
  }
};

split_outputs split_from_cache(const tensor& labels, const tensor& difficulty,
                               const tensor& big, const tensor& base,
                               const tensor& joint, const tensor& q,
                               std::size_t num_classes) {
  split_outputs out;
  out.labels = to_indices(labels);
  out.difficulty = to_floats(difficulty);
  const std::size_t n = out.labels.size();
  out.big_logits = big.reshaped(shape{n, num_classes});
  out.little_base_logits = base.reshaped(shape{n, num_classes});
  out.little_joint_logits = joint.reshaped(shape{n, num_classes});
  out.q = to_floats(q);
  return out;
}

double split_accuracy(const tensor& logits,
                      const std::vector<std::size_t>& labels) {
  const auto preds = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

void fill_headline_accuracies(experiment_outputs& out) {
  out.little_base_accuracy =
      split_accuracy(out.test.little_base_logits, out.test.labels);
  out.little_joint_accuracy =
      split_accuracy(out.test.little_joint_logits, out.test.labels);
  out.big_accuracy = split_accuracy(out.test.big_logits, out.test.labels);
}

}  // namespace

experiment_outputs run_experiment(const experiment_config& cfg,
                                  const util::artifact_cache* cache) {
  const std::string key = cfg.canonical();

  if (cache != nullptr) {
    if (const auto path = cache->find(key)) {
      const auto doc = nn::load_tensors_dynamic(*path);
      const auto get = [&](const std::string& name) -> const tensor& {
        const auto it = doc.find(name);
        APPEAL_CHECK(it != doc.end(), "cache missing tensor " + name);
        return it->second;
      };
      experiment_outputs out;
      const tensor& meta = get("meta");
      APPEAL_CHECK(meta.size() == 3, "bad cache meta");
      out.little_mflops = meta[0];
      out.big_mflops = meta[1];
      out.num_classes = static_cast<std::size_t>(meta[2]);
      out.val = split_from_cache(get("val.labels"), get("val.difficulty"),
                                 get("val.big"), get("val.base"),
                                 get("val.joint"), get("val.q"),
                                 out.num_classes);
      out.test = split_from_cache(get("test.labels"), get("test.difficulty"),
                                  get("test.big"), get("test.base"),
                                  get("test.joint"), get("test.q"),
                                  out.num_classes);
      fill_headline_accuracies(out);
      APPEAL_LOG_DEBUG("experiment") << "experiment loaded from cache: " << key;
      return out;
    }
  }

  util::timer total_timer;
  APPEAL_LOG_INFO("experiment") << "running experiment " << key;

  const data::dataset_bundle bundle = data::make_bundle(cfg.dataset, cfg.seed);
  const models::model_spec edge_spec = edge_spec_for(cfg);
  const models::model_spec big_spec = big_spec_for(cfg);

  // Shared augmentation policy: shifts + noise keep train-set losses honest
  // (the q head needs a live difficulty signal); flips are not
  // label-preserving for the synthetic prototypes.
  data::augment_config augmentation;
  augmentation.max_shift = 2;
  augmentation.flip_probability = 0.0;
  augmentation.noise_sigma = 0.04F;

  // --- Big network. In the black-box setting (paper IV-B, Table II) the
  // cloud is an oracle: no big model is trained, and its "logits" are
  // one-hot ground truth. The white-box setting trains a real ResNet.
  util::rng big_gen(cfg.seed * 97 + 5);
  auto big = models::make_classifier(big_spec, big_gen);
  if (!cfg.black_box) {
    core::trainer_config big_train;
    big_train.epochs = cfg.big_epochs;
    big_train.batch_size = cfg.batch_size;
    big_train.learning_rate = 2.5e-3;
    big_train.seed = cfg.seed * 31 + 1;
    big_train.verbose = cfg.verbose;
    big_train.augment = cfg.augment;
    big_train.augmentation = augmentation;
    core::train_classifier(*big, *bundle.train, bundle.val.get(), big_train);
  }

  const auto oracle_logits = [](const data::dataset& ds,
                                std::size_t num_classes) {
    tensor logits(shape{ds.size(), num_classes});
    for (std::size_t i = 0; i < ds.size(); ++i) {
      logits[i * num_classes + ds.get(i).label] = 10.0F;
    }
    return logits;
  };

  // --- Two-head little network: phase 1 (Algorithm 1 line 1). ---
  core::two_head_config little_cfg;
  little_cfg.spec = edge_spec;
  little_cfg.init_seed = cfg.seed * 131 + 7;
  core::two_head_network little(little_cfg);

  core::trainer_config pre_train;
  pre_train.epochs = cfg.pretrain_epochs;
  pre_train.batch_size = cfg.batch_size;
  pre_train.learning_rate = 2.5e-3;
  pre_train.seed = cfg.seed * 31 + 2;
  pre_train.verbose = cfg.verbose;
  pre_train.augment = cfg.augment;
  pre_train.augmentation = augmentation;
  core::pretrain_two_head(little, *bundle.train, bundle.val.get(), pre_train);

  // Snapshot the phase-1 model — this is the standalone little network the
  // confidence baselines (MSP/SM/Entropy) run on.
  const tensor base_val = core::eval_approximator_logits(little, *bundle.val);
  const tensor base_test =
      core::eval_approximator_logits(little, *bundle.test);

  // --- Joint training (Algorithm 1 lines 2-9). The frozen big network is
  // passed in so l0 is evaluated on each (augmented) batch, matching the
  // algorithm's per-batch loss. ---
  core::trainer_config joint_train;
  joint_train.epochs = cfg.joint_epochs;
  joint_train.batch_size = cfg.batch_size;
  joint_train.learning_rate = cfg.joint_lr;
  joint_train.seed = cfg.seed * 31 + 3;
  joint_train.verbose = cfg.verbose;
  joint_train.augment = cfg.augment;
  joint_train.augmentation = augmentation;

  core::joint_loss_config loss_cfg;
  loss_cfg.beta = cfg.beta;
  loss_cfg.black_box = cfg.black_box;
  core::train_joint(little, *bundle.train, bundle.val.get(), {}, joint_train,
                    loss_cfg, cfg.black_box ? nullptr : big.get());

  // --- Evaluate everything. ---
  experiment_outputs out;
  out.num_classes = edge_spec.num_classes;

  const auto fill_split = [&](const data::dataset& ds, split_outputs& split,
                              const tensor& base_logits) {
    split.labels = dataset_labels(ds);
    split.difficulty = dataset_difficulties(ds);
    split.big_logits = cfg.black_box
                           ? oracle_logits(ds, edge_spec.num_classes)
                           : core::eval_logits(*big, ds);
    split.little_base_logits = base_logits;
    const core::two_head_eval joint_eval = core::eval_two_head(little, ds);
    split.little_joint_logits = joint_eval.logits;
    split.q = joint_eval.q;
  };
  fill_split(*bundle.val, out.val, base_val);
  fill_split(*bundle.test, out.test, base_test);

  const shape single{1, edge_spec.in_channels, edge_spec.image_size,
                     edge_spec.image_size};
  out.little_mflops = static_cast<double>(little.flops(single)) / 1e6;
  out.big_mflops = static_cast<double>(big->flops(single)) / 1e6;
  fill_headline_accuracies(out);

  APPEAL_LOG_INFO("experiment") << "experiment finished in "
                  << util::format_fixed(total_timer.seconds(), 1) << "s ("
                  << "little=" << util::format_percent(out.little_joint_accuracy)
                  << ", big=" << util::format_percent(out.big_accuracy) << ")";

  if (cache != nullptr) {
    cache_image image;
    image.val_labels = to_tensor(out.val.labels);
    image.val_difficulty = to_tensor(out.val.difficulty);
    image.val_big = out.val.big_logits;
    image.val_base = out.val.little_base_logits;
    image.val_joint = out.val.little_joint_logits;
    image.val_q = to_tensor(out.val.q);
    image.test_labels = to_tensor(out.test.labels);
    image.test_difficulty = to_tensor(out.test.difficulty);
    image.test_big = out.test.big_logits;
    image.test_base = out.test.little_base_logits;
    image.test_joint = out.test.little_joint_logits;
    image.test_q = to_tensor(out.test.q);
    image.meta = tensor(shape{3});
    image.meta[0] = static_cast<float>(out.little_mflops);
    image.meta[1] = static_cast<float>(out.big_mflops);
    image.meta[2] = static_cast<float>(out.num_classes);
    nn::save_tensors(image.names(), cache->prepare_write(key));
  }
  return out;
}

}  // namespace appeal::collab
