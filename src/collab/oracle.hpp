// Oracle cloud model (paper Section IV-B, black-box setting).
//
// When the cloud model belongs to an external vendor, AppealNet trains
// against an oracle assumption: the cloud always answers correctly
// (l0 = 0). For evaluation this wrapper produces ground-truth predictions
// for offloaded inputs, matching the paper's Table II protocol where "the
// oracle function always predicts correct results".
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace appeal::collab {

/// Predictions of an always-correct cloud service over a dataset.
std::vector<std::size_t> oracle_predictions(const data::dataset& ds);

/// Labels of a dataset (convenience used everywhere in evaluation).
std::vector<std::size_t> dataset_labels(const data::dataset& ds);

/// Per-sample latent difficulties (generator metadata used for analysis).
std::vector<float> dataset_difficulties(const data::dataset& ds);

}  // namespace appeal::collab
