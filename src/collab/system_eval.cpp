#include "collab/system_eval.hpp"

#include "metrics/metrics.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::collab {

routed_split make_routed_split(const tensor& little_logits,
                               const tensor& big_logits,
                               const std::vector<std::size_t>& labels,
                               std::vector<double> scores) {
  APPEAL_CHECK(little_logits.dims().dim(0) == labels.size() &&
                   big_logits.dims().dim(0) == labels.size() &&
                   scores.size() == labels.size(),
               "make_routed_split: size mismatch");
  routed_split split;
  split.labels = labels;
  split.little_predictions = ops::argmax_rows(little_logits);
  split.big_predictions = ops::argmax_rows(big_logits);
  split.scores = std::move(scores);
  return split;
}

std::vector<sweep_point> accuracy_vs_sr_curve(
    const routed_split& eval, const routed_split* tuning,
    const std::vector<double>& target_srs) {
  APPEAL_CHECK(!eval.labels.empty(), "accuracy_vs_sr_curve on empty split");

  std::vector<sweep_point> curve;
  curve.reserve(target_srs.size());
  for (const double target : target_srs) {
    const std::vector<double>& tuning_scores =
        tuning != nullptr ? tuning->scores : eval.scores;
    const double delta = core::delta_for_skipping_rate(tuning_scores, target);

    const metrics::collaborative_outcome outcome =
        metrics::evaluate_collaborative(eval.little_predictions,
                                        eval.big_predictions, eval.labels,
                                        eval.scores, delta);
    sweep_point point;
    point.target_sr = target;
    point.achieved_sr = outcome.skipping_rate;
    point.accuracy = outcome.overall_accuracy;
    point.delta = delta;
    curve.push_back(point);
  }
  return curve;
}

std::vector<double> paper_sr_grid() {
  return {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00};
}

std::vector<double> paper_acci_targets() {
  return {0.50, 0.75, 0.90, 0.95};
}

}  // namespace appeal::collab
