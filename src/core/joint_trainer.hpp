// Training loops: standalone classifier training (used for the big/cloud
// network and the phase-1 pretraining of Algorithm 1) and the AppealNet
// joint training scheme (Algorithm 1's main loop).
#pragma once

#include <string>
#include <vector>

#include "core/joint_loss.hpp"
#include "core/two_head_network.hpp"
#include "data/augment.hpp"
#include "data/dataset.hpp"
#include "nn/layer.hpp"

namespace appeal::core {

/// Shared optimization settings.
struct trainer_config {
  std::size_t epochs = 15;
  std::size_t batch_size = 32;
  double learning_rate = 2e-3;
  double weight_decay = 1e-4;
  std::string optimizer = "adam";  // "adam" | "sgd"
  double momentum = 0.9;           // sgd only
  bool cosine_schedule = true;     // anneal LR to ~0 across the run
  bool augment = false;            // train-time augmentation
  data::augment_config augmentation;
  std::uint64_t seed = 7;
  bool verbose = false;  // log one line per epoch
};

/// Per-epoch observations.
struct epoch_stats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;  // on the (possibly augmented) train batches
  double mean_q = 0.0;          // joint training only: batch-mean q(1|x)
};

/// Outcome of one training run.
struct training_log {
  std::vector<epoch_stats> epochs;
  double val_accuracy = 0.0;  // 0 when no validation set was given
};

/// Trains any classifier (a layer producing [N, K] logits) with softmax
/// cross-entropy. Used for the big network and anywhere a plain classifier
/// is needed.
training_log train_classifier(nn::layer& model, const data::dataset& train,
                              const data::dataset* val,
                              const trainer_config& cfg);

/// Algorithm 1, line 1: phase-1 pretraining of the two-head network's
/// extractor + approximator head (predictor head untouched).
training_log pretrain_two_head(two_head_network& net,
                               const data::dataset& train,
                               const data::dataset* val,
                               const trainer_config& cfg);

/// Algorithm 1, lines 2-9: joint training of (f1, q).
///
/// White-box l0 source (line 3's ℓ(f0(x), y) term), in priority order:
///  - `big_model` non-null: f0 runs on each training batch (after
///    augmentation), exactly as Algorithm 1 evaluates both models on the
///    same x. This is the recommended mode.
///  - otherwise `big_losses[i]` must hold f0's cross-entropy on train
///    sample i (precomputed on clean images — cheaper but blind to
///    augmentation).
/// Black-box mode ignores both (l0 = 0, Eq. 10).
training_log train_joint(two_head_network& net, const data::dataset& train,
                         const data::dataset* val,
                         const std::vector<float>& big_losses,
                         const trainer_config& cfg,
                         const joint_loss_config& loss_cfg,
                         nn::layer* big_model = nullptr);

/// Runs a classifier over a dataset in eval mode; returns [N, K] logits.
tensor eval_logits(nn::layer& model, const data::dataset& ds,
                   std::size_t batch_size = 64);

/// Runs the two-head network over a dataset in eval mode.
struct two_head_eval {
  tensor logits;         // [N, K]
  std::vector<float> q;  // [N]
};
two_head_eval eval_two_head(two_head_network& net, const data::dataset& ds,
                            std::size_t batch_size = 64);

/// Runs only the approximator path of the two-head network over a dataset
/// (eval mode) — evaluates the phase-1 "standalone little" model.
tensor eval_approximator_logits(two_head_network& net,
                                const data::dataset& ds,
                                std::size_t batch_size = 64);

/// Per-sample cross-entropy of `model` over `ds` (eval mode) — produces the
/// l0 vector the white-box joint loss consumes.
std::vector<float> per_sample_losses(nn::layer& model,
                                     const data::dataset& ds,
                                     std::size_t batch_size = 64);

/// Top-1 accuracy of [N, K] logits against dataset labels.
double logits_accuracy(const tensor& logits, const data::dataset& ds);

}  // namespace appeal::core
