#include "core/threshold.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "metrics/metrics.hpp"
#include "util/error.hpp"

namespace appeal::core {

double delta_for_skipping_rate(const std::vector<double>& scores,
                               double target_sr) {
  APPEAL_CHECK(!scores.empty(), "delta_for_skipping_rate on empty scores");
  APPEAL_CHECK(target_sr >= 0.0 && target_sr <= 1.0,
               "target skipping rate outside [0, 1]");

  // SR(δ) = fraction of scores >= δ. Sorting descending, keeping the first
  // round(target * n) samples means δ = that sample's score.
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto n = sorted.size();
  const auto keep = static_cast<std::size_t>(
      std::llround(target_sr * static_cast<double>(n)));
  if (keep == 0) {
    return sorted.front() + 1.0;  // above every score: SR = 0
  }
  if (keep >= n) {
    return sorted.back();  // at or below every score: SR = 1
  }
  return sorted[keep - 1];
}

operating_point evaluate_at_delta(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels, const std::vector<double>& scores,
    double delta, const accuracy_context& ctx) {
  const metrics::collaborative_outcome outcome = metrics::evaluate_collaborative(
      little_predictions, big_predictions, labels, scores, delta);
  operating_point point;
  point.delta = delta;
  point.skipping_rate = outcome.skipping_rate;
  point.overall_accuracy = outcome.overall_accuracy;
  point.acc_improvement = metrics::relative_accuracy_improvement(
      outcome.overall_accuracy, ctx.little_accuracy, ctx.big_accuracy);
  return point;
}

std::vector<operating_point> sweep_thresholds(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels, const std::vector<double>& scores,
    const accuracy_context& ctx) {
  APPEAL_CHECK(!scores.empty(), "sweep_thresholds on empty scores");

  // Candidate thresholds: one above all scores (SR = 0), then each distinct
  // score value (δ = score keeps that sample and everything above).
  std::vector<double> candidates = scores;
  std::sort(candidates.begin(), candidates.end(), std::greater<>());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<operating_point> sweep;
  sweep.reserve(candidates.size() + 1);
  sweep.push_back(evaluate_at_delta(little_predictions, big_predictions,
                                    labels, scores, candidates.front() + 1.0,
                                    ctx));
  for (const double delta : candidates) {
    sweep.push_back(evaluate_at_delta(little_predictions, big_predictions,
                                      labels, scores, delta, ctx));
  }
  // candidates are descending, so skipping rate is already non-decreasing.
  return sweep;
}

operating_point cheapest_point_for_acci(
    const std::vector<operating_point>& sweep, double target_acci) {
  APPEAL_CHECK(!sweep.empty(), "cheapest_point_for_acci on empty sweep");

  const operating_point* best = nullptr;
  for (const operating_point& point : sweep) {
    if (point.acc_improvement + 1e-12 < target_acci) continue;
    if (best == nullptr || point.skipping_rate > best->skipping_rate) {
      best = &point;
    }
  }
  if (best != nullptr) return *best;

  // Unreachable target: return the most accurate point (the paper's tables
  // only query reachable targets; this keeps the API total).
  const operating_point* fallback = &sweep.front();
  for (const operating_point& point : sweep) {
    if (point.acc_improvement > fallback->acc_improvement) {
      fallback = &point;
    }
  }
  return *fallback;
}

}  // namespace appeal::core
