#include "core/appealnet_builder.hpp"

#include "core/scores.hpp"
#include "nn/flops.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace appeal::core {

appealnet_system::appealnet_system(std::unique_ptr<two_head_network> little,
                                   std::unique_ptr<nn::sequential> big,
                                   double delta)
    : little_(std::move(little)), big_(std::move(big)), delta_(delta) {
  APPEAL_CHECK(little_ != nullptr && big_ != nullptr,
               "appealnet_system requires both models");
}

appealnet_system::decision appealnet_system::infer(const tensor& image) {
  tensor batch_input = image;
  if (image.dims().rank() == 3) {
    batch_input = image.reshaped(shape{1, image.dims().dim(0),
                                       image.dims().dim(1),
                                       image.dims().dim(2)});
  }
  APPEAL_CHECK(batch_input.dims().rank() == 4 && batch_input.batch() == 1,
               "infer expects a single image");

  two_head_output out = little_->forward(batch_input, /*training=*/false);
  decision d;
  d.q = out.q[0];
  if (d.q >= delta_) {
    d.offloaded = false;
    d.predicted_class = ops::argmax(out.logits);
  } else {
    d.offloaded = true;
    const tensor big_logits = big_->forward(batch_input, /*training=*/false);
    d.predicted_class = ops::argmax(big_logits);
  }
  return d;
}

std::vector<appealnet_system::decision> appealnet_system::infer_all(
    const data::dataset& ds, std::size_t batch_size) {
  // Run the little network over everything, then the big network only on
  // the appealed subset — mirroring the deployment data flow.
  const two_head_eval little_eval = eval_two_head(*little_, ds, batch_size);
  const auto little_preds = ops::argmax_rows(little_eval.logits);

  std::vector<decision> out(ds.size());
  std::vector<std::size_t> appealed;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    out[i].q = little_eval.q[i];
    if (out[i].q >= delta_) {
      out[i].offloaded = false;
      out[i].predicted_class = little_preds[i];
    } else {
      out[i].offloaded = true;
      appealed.push_back(i);
    }
  }

  std::size_t cursor = 0;
  while (cursor < appealed.size()) {
    const std::size_t end = std::min(cursor + batch_size, appealed.size());
    const std::vector<std::size_t> rows(appealed.begin() + static_cast<std::ptrdiff_t>(cursor),
                                        appealed.begin() + static_cast<std::ptrdiff_t>(end));
    const data::batch b = data::make_batch(ds, rows);
    const tensor logits = big_->forward(b.images, /*training=*/false);
    const auto preds = ops::argmax_rows(logits);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out[rows[i]].predicted_class = preds[i];
    }
    cursor = end;
  }
  return out;
}

void appealnet_system::calibrate_for_skipping_rate(
    const data::dataset& calibration, double target_sr) {
  const two_head_eval eval = eval_two_head(*little_, calibration);
  delta_ = delta_for_skipping_rate(q_to_scores(eval.q), target_sr);
}

double appealnet_system::edge_mflops() const {
  const auto& spec = little_->config().spec;
  const shape input{1, spec.in_channels, spec.image_size, spec.image_size};
  return static_cast<double>(little_->flops(input)) / 1e6;
}

double appealnet_system::cloud_mflops() const {
  const auto& spec = little_->config().spec;
  const shape input{1, spec.in_channels, spec.image_size, spec.image_size};
  return static_cast<double>(big_->flops(input)) / 1e6;
}

appealnet_system build_appealnet(const data::dataset& train,
                                 const data::dataset& val,
                                 const appealnet_build_config& cfg,
                                 appealnet_build_report* report,
                                 std::unique_ptr<nn::sequential>
                                     pretrained_big) {
  appealnet_build_report local_report;
  appealnet_build_report& rep = report != nullptr ? *report : local_report;

  // 1. Big/cloud network.
  std::unique_ptr<nn::sequential> big = std::move(pretrained_big);
  if (big == nullptr) {
    util::rng gen(cfg.seed);
    big = models::make_classifier(cfg.big_spec, gen);
    APPEAL_LOG_INFO("builder") << "training big network ("
                    << models::family_name(cfg.big_spec.family) << ")";
    rep.big_log = train_classifier(*big, train, &val, cfg.big_training);
  }
  rep.big_val_accuracy = logits_accuracy(eval_logits(*big, val), val);

  // 2. Two-head little network, phase-1 pretraining (Algorithm 1, line 1).
  auto little = std::make_unique<two_head_network>(cfg.little);
  APPEAL_LOG_INFO("builder") << "pretraining little network ("
                  << models::family_name(cfg.little.spec.family) << ")";
  rep.pretrain_log = pretrain_two_head(*little, train, &val, cfg.pretraining);

  // 3+4. Joint training (Algorithm 1, lines 2-9); the frozen big model
  // supplies l0 on each training batch in white-box mode.
  APPEAL_LOG_INFO("builder") << "joint training (beta="
                  << cfg.loss.beta << (cfg.loss.black_box ? ", black-box)"
                                                          : ", white-box)");
  rep.joint_log =
      train_joint(*little, train, &val, {}, cfg.joint_training, cfg.loss,
                  cfg.loss.black_box ? nullptr : big.get());
  {
    const two_head_eval eval = eval_two_head(*little, val);
    rep.little_val_accuracy = logits_accuracy(eval.logits, val);
  }

  // 5. Calibrate δ on the validation split.
  appealnet_system system(std::move(little), std::move(big), 0.5);
  system.calibrate_for_skipping_rate(val, cfg.target_skipping_rate);
  return system;
}

}  // namespace appeal::core
