// Threshold (δ) tuning.
//
// The runtime decision rule is q(1|x) >= δ (Eq. 1). The paper tunes δ on a
// held-out set for two kinds of targets:
//   - a target skipping rate (Fig. 5's x-axis),
//   - a target relative accuracy improvement AccI (Tables I/II), picking
//     the cheapest δ (highest SR) that still meets the target.
#pragma once

#include <cstddef>
#include <vector>

namespace appeal::core {

/// One evaluated operating point of a (little, big, score) system.
struct operating_point {
  double delta = 0.0;
  double skipping_rate = 0.0;
  double overall_accuracy = 0.0;
  double acc_improvement = 0.0;  // AccI, Eq. 14
};

/// Reference accuracies needed to compute AccI.
struct accuracy_context {
  double little_accuracy = 0.0;
  double big_accuracy = 0.0;
};

/// Returns δ achieving a skipping rate as close as possible to `target_sr`
/// (ties broken toward the higher rate). Scores follow higher-is-easier.
double delta_for_skipping_rate(const std::vector<double>& scores,
                               double target_sr);

/// Evaluates the collaborative system at one threshold.
operating_point evaluate_at_delta(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels, const std::vector<double>& scores,
    double delta, const accuracy_context& ctx);

/// Sweeps every distinct threshold (each candidate sits between consecutive
/// sorted scores) and returns the operating points in increasing-SR order.
std::vector<operating_point> sweep_thresholds(
    const std::vector<std::size_t>& little_predictions,
    const std::vector<std::size_t>& big_predictions,
    const std::vector<std::size_t>& labels, const std::vector<double>& scores,
    const accuracy_context& ctx);

/// Picks the cheapest operating point (max SR) whose AccI >= `target_acci`.
/// Falls back to the most accurate point when the target is unreachable.
operating_point cheapest_point_for_acci(
    const std::vector<operating_point>& sweep, double target_acci);

}  // namespace appeal::core
