// The AppealNet two-head architecture (paper Section V-A, Fig. 2).
//
// A shared feature extractor feeds two heads:
//   - the approximator head outputs class logits (p(y|x) after softmax),
//   - the predictor head — a single fully-connected layer, as in the paper —
//     outputs one raw score per input whose sigmoid is q(1|x), the
//     probability the input is "easy" (the little network suffices).
// Backward sums the two heads' gradients at the feature junction.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "models/model_zoo.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace appeal::core {

/// Configuration of the two-head little network.
struct two_head_config {
  models::model_spec spec;          // edge backbone (family, width, classes…)
  std::size_t approx_hidden = 0;    // >0 adds a hidden FC layer to the
                                    // approximator head (paper: "several
                                    // cascaded fully-connected layers")
  std::uint64_t init_seed = 0x11;
};

/// Two-head forward result.
struct two_head_output {
  tensor logits;    // [N, K] approximator logits
  tensor q_logits;  // [N] raw predictor scores (pre-sigmoid)
  std::vector<float> q;  // sigmoid(q_logits), the paper's q(1|x)
};

/// The little network (f1, q) of the paper.
class two_head_network {
 public:
  explicit two_head_network(const two_head_config& cfg);

  /// Runs extractor + both heads.
  two_head_output forward(const tensor& images, bool training);

  /// Runs extractor + approximator head only (no predictor cost) — the
  /// phase-1 pretraining path and the baseline little-model path.
  tensor forward_approximator(const tensor& images, bool training);

  /// Inference-only prefix pass: runs the extractor up to cut `cut_index`
  /// (an index into extractor().cuts()) and returns the intermediate
  /// feature map — the tensor a split-computing appeal ships instead of
  /// the raw input. Reuses the same inference-workspace arena as the edge
  /// pass, and because forward() is forward_range over the whole chain,
  /// prefix-then-suffix is bit-identical to one full forward.
  tensor forward_to_cut(const tensor& images, std::size_t cut_index);

  /// One-time deployment optimization: folds every conv+batchnorm pair in
  /// the extractor (nn::fold_conv_batchnorm). Outputs are unchanged up to
  /// float rounding; training after this call is meaningless. Idempotent.
  /// Returns the number of folded pairs (0 on repeat calls).
  std::size_t prepare_for_inference();

  /// Backward for a forward() call: joins both heads' gradients.
  /// `grad_q_logits` must be [N].
  void backward(const tensor& grad_logits, const tensor& grad_q_logits);

  /// Backward for a forward_approximator() call.
  void backward_approximator(const tensor& grad_logits);

  /// Parameters of extractor + approximator head (phase-1 training set).
  std::vector<nn::parameter*> approximator_parameters();

  /// All parameters (extractor + both heads) for joint training.
  std::vector<nn::parameter*> all_parameters();

  /// Persistent state for serialization.
  std::vector<nn::named_tensor> state();

  void save(const std::string& path);
  void load(const std::string& path);

  /// Forward cost of the full two-head model for a [N=1] input, in FLOPs.
  /// The predictor head adds one FC layer — the paper's "minimal overhead".
  std::uint64_t flops(const shape& single_input) const;

  /// Cost of the approximator path alone (extractor + approximator head).
  std::uint64_t approximator_flops(const shape& single_input) const;

  const two_head_config& config() const { return config_; }
  std::size_t feature_dim() const { return feature_dim_; }
  nn::sequential& extractor() { return *extractor_; }
  nn::sequential& approximator_head() { return *approx_head_; }
  nn::linear& predictor_head() { return *predictor_head_; }

 private:
  two_head_config config_;
  std::size_t feature_dim_;
  std::unique_ptr<nn::sequential> extractor_;
  std::unique_ptr<nn::sequential> approx_head_;
  std::unique_ptr<nn::linear> predictor_head_;
  bool last_forward_had_predictor_ = false;
  bool folded_for_inference_ = false;
};

}  // namespace appeal::core
