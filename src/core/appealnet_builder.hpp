// End-to-end AppealNet construction (paper Fig. 3, full workflow).
//
// build_appealnet() runs the whole pipeline on a dataset:
//   1. train (or accept) the big/cloud network,
//   2. phase-1 pretrain the two-head little network's approximator
//      (Algorithm 1 line 1: "initialize with the pre-trained model"),
//   3. compute the big network's per-sample losses (white box) or use the
//      oracle assumption (black box),
//   4. jointly train (f1, q) with the Eq. 9 / Eq. 10 objective,
//   5. calibrate the offload threshold δ on the validation split.
// The result is a deployable edge/cloud system.
#pragma once

#include <memory>
#include <optional>

#include "core/joint_loss.hpp"
#include "core/joint_trainer.hpp"
#include "core/threshold.hpp"
#include "core/two_head_network.hpp"
#include "data/dataset.hpp"
#include "models/model_zoo.hpp"
#include "nn/sequential.hpp"

namespace appeal::core {

/// Everything needed to build one AppealNet system.
struct appealnet_build_config {
  two_head_config little;
  models::model_spec big_spec;       // ignored when a big model is supplied
  trainer_config big_training;
  trainer_config pretraining;
  trainer_config joint_training;
  joint_loss_config loss;
  /// δ calibration: target skipping rate on the validation split.
  double target_skipping_rate = 0.9;
  std::uint64_t seed = 42;
};

/// A deployed edge/cloud system: the two-head little network at the edge,
/// the big network in the (simulated) cloud, and the calibrated threshold.
class appealnet_system {
 public:
  appealnet_system(std::unique_ptr<two_head_network> little,
                   std::unique_ptr<nn::sequential> big, double delta);

  /// Per-input decision for a [1, C, H, W] (or [C, H, W]) image.
  struct decision {
    std::size_t predicted_class = 0;
    bool offloaded = false;  // true: the cloud model produced the answer
    double q = 0.0;          // predictor score q(1|x)
  };
  decision infer(const tensor& image);

  /// Batch evaluation over a dataset; returns per-sample decisions.
  std::vector<decision> infer_all(const data::dataset& ds,
                                  std::size_t batch_size = 64);

  two_head_network& little() { return *little_; }
  nn::sequential& big() { return *big_; }
  double delta() const { return delta_; }
  void set_delta(double delta) { delta_ = delta; }

  /// Re-tunes δ for a target skipping rate on a calibration set.
  void calibrate_for_skipping_rate(const data::dataset& calibration,
                                   double target_sr);

  /// Per-inference edge cost (two-head little network) in MFLOPs.
  double edge_mflops() const;
  /// Per-inference cloud-path compute (big network) in MFLOPs.
  double cloud_mflops() const;

 private:
  std::unique_ptr<two_head_network> little_;
  std::unique_ptr<nn::sequential> big_;
  double delta_;
};

/// Build report: training logs + reference accuracies.
struct appealnet_build_report {
  training_log big_log;
  training_log pretrain_log;
  training_log joint_log;
  double little_val_accuracy = 0.0;  // after joint training
  double big_val_accuracy = 0.0;
};

/// Runs the full pipeline. When `pretrained_big` is provided it is used
/// as-is (its training is skipped) — the "machine-learning service vendor"
/// scenario of Section IV-B.
appealnet_system build_appealnet(const data::dataset& train,
                                 const data::dataset& val,
                                 const appealnet_build_config& cfg,
                                 appealnet_build_report* report = nullptr,
                                 std::unique_ptr<nn::sequential>
                                     pretrained_big = nullptr);

}  // namespace appeal::core
