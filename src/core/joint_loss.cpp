#include "core/joint_loss.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::core {

joint_loss_result compute_joint_loss(const tensor& little_logits,
                                     const tensor& q_logits,
                                     const std::vector<std::size_t>& labels,
                                     const std::vector<float>& big_losses,
                                     const joint_loss_config& cfg) {
  APPEAL_CHECK(little_logits.dims().rank() == 2,
               "joint loss: little logits must be [N, K]");
  const std::size_t n = little_logits.dims().dim(0);
  const std::size_t k = little_logits.dims().dim(1);
  APPEAL_CHECK(n > 0, "joint loss on an empty batch");
  APPEAL_CHECK(q_logits.dims() == shape({n}),
               "joint loss: q_logits must be [N]");
  APPEAL_CHECK(labels.size() == n, "joint loss: label count mismatch");
  APPEAL_CHECK(cfg.black_box || big_losses.size() == n,
               "joint loss: white-box mode requires per-sample big losses");
  APPEAL_CHECK(cfg.beta >= 0.0, "joint loss: beta must be >= 0");

  const tensor log_probs = ops::log_softmax_rows(little_logits);

  joint_loss_result result;
  result.grad_logits = tensor(little_logits.dims());
  result.grad_q_logits = tensor(q_logits.dims());
  result.q.resize(n);
  result.little_losses.resize(n);

  const float inv_n = 1.0F / static_cast<float>(n);
  const auto beta = static_cast<float>(cfg.beta);
  const float* lp = log_probs.data();
  const float* s = q_logits.data();
  float* gz = result.grad_logits.data();
  float* gs = result.grad_q_logits.data();

  double system_total = 0.0;
  double cost_total = 0.0;

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t y = labels[i];
    APPEAL_CHECK(y < k, "joint loss: label out of range");
    const float* row = lp + i * k;

    const float l1 = -row[y];
    const float l0 = cfg.black_box ? 0.0F : big_losses[i];
    const float q_raw = 1.0F / (1.0F + std::exp(-s[i]));
    const float q = std::clamp(q_raw, cfg.q_floor, 1.0F - cfg.q_floor);

    result.q[i] = q_raw;
    result.little_losses[i] = l1;

    system_total += static_cast<double>(q) * l1 +
                    static_cast<double>(1.0F - q) * l0;
    cost_total += -std::log(static_cast<double>(q));

    // dL/dz = q * (p - onehot) / N.
    float* grow = gz + i * k;
    for (std::size_t j = 0; j < k; ++j) {
      const float p = std::exp(row[j]);
      const float target = (j == y) ? 1.0F : 0.0F;
      grow[j] = q * (p - target) * inv_n;
    }

    // dL/ds = [(l1 - l0) * q * (1 - q) - beta * (1 - q)] / N.
    gs[i] = ((l1 - l0) * q * (1.0F - q) - beta * (1.0F - q)) * inv_n;
  }

  result.system_loss = system_total / static_cast<double>(n);
  result.cost_loss = cost_total / static_cast<double>(n);
  result.total_loss = result.system_loss + cfg.beta * result.cost_loss;
  return result;
}

}  // namespace appeal::core
