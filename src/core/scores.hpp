// Routing scores: the paper's three confidence baselines plus AppealNet's q.
//
// All scores follow the convention "higher = easier" (keep on the edge):
//   MSP      = max_j p(y=j|x)                       [Hendrycks & Gimpel]
//   SM       = p_(1) - p_(2)  (score margin / gap)  [Park et al.]
//   Entropy  = sum_j p_j log p_j  (negative entropy) [BranchyNet]
//   AppealNet q = q(1|x) from the predictor head.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::core {

enum class score_method { msp, score_margin, entropy, appealnet_q };

/// Parses "msp" / "sm" / "entropy" / "appealnet".
score_method parse_score_method(const std::string& name);

/// Display name ("MSP", "SM", "Entropy", "AppealNet").
std::string score_method_name(score_method method);

/// All methods in the paper's comparison order.
std::vector<score_method> all_score_methods();

/// Confidence scores from [N, K] softmax probabilities.
std::vector<double> msp_scores(const tensor& probabilities);
std::vector<double> score_margin_scores(const tensor& probabilities);
std::vector<double> entropy_scores(const tensor& probabilities);

/// Dispatcher for probability-based methods; `appealnet_q` is not valid
/// here (its scores come from the predictor head, not from probabilities).
std::vector<double> confidence_scores(score_method method,
                                      const tensor& probabilities);

/// Converts the predictor head's q values into the common score type.
std::vector<double> q_to_scores(const std::vector<float>& q);

}  // namespace appeal::core
