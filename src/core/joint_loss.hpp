// The AppealNet joint training objective (paper Eq. 9 / Eq. 10).
//
// Per sample, with q = sigmoid(s) the predictor output:
//
//   L = q * l1 + (1 - q) * l0 + beta * (-log q)          (white box, Eq. 9)
//   L = q * l1 +               beta * (-log q)           (black box, Eq. 10)
//
// where l1 is the little network's cross-entropy on this sample and l0 the
// (frozen) big network's. beta is the Lagrange multiplier of the cost
// constraint E[q] >= b-hat (Eq. 6-8): larger beta pushes q up, keeping more
// inputs on the edge.
//
// Closed-form gradients (averaged over the batch of size M):
//   dL/dz  = q * (softmax(z) - onehot(y)) / M            (little logits z)
//   dL/ds  = [ (l1 - l0) * q * (1 - q) - beta * (1 - q) ] / M
// The black-box case sets l0 = 0 (the oracle is always right).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace appeal::core {

/// Objective parameters.
struct joint_loss_config {
  double beta = 0.3;       // cost-pressure weight
  bool black_box = false;  // Eq. 10 instead of Eq. 9
  float q_floor = 1e-6F;   // clamp for log(q) stability
};

/// Loss value and gradients for one batch.
struct joint_loss_result {
  double total_loss = 0.0;   // L_p + beta * L_q (batch mean)
  double system_loss = 0.0;  // L_p term (batch mean)
  double cost_loss = 0.0;    // L_q = -log q term (batch mean, un-scaled)
  tensor grad_logits;        // [N, K], includes the 1/M factor
  tensor grad_q_logits;      // [N], includes the 1/M factor
  std::vector<float> q;      // q(1|x) per sample
  std::vector<float> little_losses;  // l1 per sample
};

/// Evaluates the joint objective.
/// `big_losses` holds l0 per sample; it is ignored (treated as zero) when
/// `cfg.black_box` is set, and required otherwise.
joint_loss_result compute_joint_loss(const tensor& little_logits,
                                     const tensor& q_logits,
                                     const std::vector<std::size_t>& labels,
                                     const std::vector<float>& big_losses,
                                     const joint_loss_config& cfg);

}  // namespace appeal::core
