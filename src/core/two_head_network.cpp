#include "core/two_head_network.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "nn/fold.hpp"
#include "nn/inference_workspace.hpp"
#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"

namespace appeal::core {

two_head_network::two_head_network(const two_head_config& cfg) : config_(cfg) {
  models::backbone bb = models::make_backbone(cfg.spec);
  extractor_ = std::move(bb.features);
  feature_dim_ = bb.feature_dim;

  approx_head_ = std::make_unique<nn::sequential>();
  if (cfg.approx_hidden > 0) {
    approx_head_->emplace<nn::linear>(feature_dim_, cfg.approx_hidden);
    approx_head_->emplace<nn::relu>();
    approx_head_->emplace<nn::linear>(cfg.approx_hidden,
                                      cfg.spec.num_classes);
  } else {
    approx_head_->emplace<nn::linear>(feature_dim_, cfg.spec.num_classes);
  }

  predictor_head_ = std::make_unique<nn::linear>(feature_dim_, 1);

  util::rng gen(cfg.init_seed);
  nn::initialize_model(*extractor_, gen);
  nn::initialize_model(*approx_head_, gen);
  nn::initialize_model(*predictor_head_, gen);
}

two_head_output two_head_network::forward(const tensor& images,
                                          bool training) {
  tensor features = extractor_->forward(images, training);
  two_head_output out;
  out.logits = approx_head_->forward(features, training);

  tensor raw = predictor_head_->forward(features, training);  // [N, 1]
  if (!training) {
    // Both heads have consumed the features — return the buffer to the
    // worker's arena.
    nn::inference_workspace::local().recycle(std::move(features));
  }
  const std::size_t n = raw.dims().dim(0);
  raw.reshape(shape{n});
  out.q_logits = std::move(raw);
  out.q.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.q[i] = 1.0F / (1.0F + std::exp(-out.q_logits[i]));
  }
  last_forward_had_predictor_ = true;
  return out;
}

tensor two_head_network::forward_approximator(const tensor& images,
                                              bool training) {
  tensor features = extractor_->forward(images, training);
  last_forward_had_predictor_ = false;
  tensor logits = approx_head_->forward(features, training);
  if (!training) {
    nn::inference_workspace::local().recycle(std::move(features));
  }
  return logits;
}

tensor two_head_network::forward_to_cut(const tensor& images,
                                        std::size_t cut_index) {
  const std::vector<nn::cut_point>& cuts = extractor_->cuts();
  APPEAL_CHECK(cut_index < cuts.size(),
               "forward_to_cut: cut index out of range");
  return extractor_->forward_prefix(images, cuts[cut_index].boundary);
}

std::size_t two_head_network::prepare_for_inference() {
  if (folded_for_inference_) return 0;
  folded_for_inference_ = true;
  // Fold batchnorms into convs first so conv-bn-relu chains become
  // conv-relu, then absorb the clamps into the conv store epilogues.
  std::size_t changed = nn::fold_conv_batchnorm(*extractor_);
  changed += nn::fuse_conv_activation(*extractor_);
  changed += nn::fuse_conv_activation(*approx_head_);
  return changed;
}

void two_head_network::backward(const tensor& grad_logits,
                                const tensor& grad_q_logits) {
  APPEAL_CHECK(last_forward_had_predictor_,
               "two_head_network::backward requires a preceding forward() "
               "(not forward_approximator())");
  APPEAL_CHECK(grad_q_logits.dims().rank() == 1,
               "grad_q_logits must be rank-1 [N]");
  const std::size_t n = grad_q_logits.dims().dim(0);

  tensor grad_features = approx_head_->backward(grad_logits);
  const tensor grad_q_2d = grad_q_logits.reshaped(shape{n, 1});
  ops::add_inplace(grad_features, predictor_head_->backward(grad_q_2d));
  extractor_->backward(grad_features);
}

void two_head_network::backward_approximator(const tensor& grad_logits) {
  APPEAL_CHECK(!last_forward_had_predictor_,
               "backward_approximator requires a preceding "
               "forward_approximator()");
  extractor_->backward(approx_head_->backward(grad_logits));
}

std::vector<nn::parameter*> two_head_network::approximator_parameters() {
  std::vector<nn::parameter*> out = extractor_->parameters();
  for (nn::parameter* p : approx_head_->parameters()) out.push_back(p);
  return out;
}

std::vector<nn::parameter*> two_head_network::all_parameters() {
  std::vector<nn::parameter*> out = approximator_parameters();
  for (nn::parameter* p : predictor_head_->parameters()) out.push_back(p);
  return out;
}

std::vector<nn::named_tensor> two_head_network::state() {
  std::vector<nn::named_tensor> out = extractor_->state("extractor");
  for (nn::named_tensor& nt : approx_head_->state("approx_head")) {
    out.push_back(nt);
  }
  for (nn::named_tensor& nt : predictor_head_->state("predictor_head")) {
    out.push_back(nt);
  }
  return out;
}

void two_head_network::save(const std::string& path) {
  nn::save_tensors(state(), path);
}

void two_head_network::load(const std::string& path) {
  nn::load_tensors(state(), path);
}

std::uint64_t two_head_network::flops(const shape& single_input) const {
  const shape features{single_input.dim(0), feature_dim_};
  return extractor_->flops(single_input) + approx_head_->flops(features) +
         predictor_head_->flops(features);
}

std::uint64_t two_head_network::approximator_flops(
    const shape& single_input) const {
  const shape features{single_input.dim(0), feature_dim_};
  return extractor_->flops(single_input) + approx_head_->flops(features);
}

}  // namespace appeal::core
