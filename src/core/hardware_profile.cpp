#include "core/hardware_profile.hpp"

#include "models/model_zoo.hpp"
#include "nn/flops.hpp"
#include "nn/linear.hpp"
#include "util/error.hpp"

namespace appeal::core {

std::vector<profiled_model> profile_pool(
    const hardware_spec& device, const std::vector<models::model_spec>& pool) {
  APPEAL_CHECK(!pool.empty(), "profile_pool requires at least one candidate");
  APPEAL_CHECK(device.peak_gflops > 0.0, "device peak_gflops must be > 0");

  std::vector<profiled_model> out;
  out.reserve(pool.size());
  for (const models::model_spec& spec : pool) {
    // Build the full little model (backbone + classification head) to
    // measure what would actually be deployed.
    models::backbone bb = models::make_backbone(spec);
    bb.features->emplace<nn::linear>(bb.feature_dim, spec.num_classes);

    const shape input{1, spec.in_channels, spec.image_size, spec.image_size};
    profiled_model profiled;
    profiled.spec = spec;
    profiled.mflops = nn::mflops(*bb.features, input);
    profiled.params_kb =
        static_cast<double>(nn::parameter_count(*bb.features)) * 4.0 / 1024.0;
    profiled.latency_ms = profiled.mflops / (device.peak_gflops * 1e3) * 1e3;
    profiled.fits = profiled.mflops <= device.compute_budget_mflops &&
                    profiled.params_kb <= device.memory_budget_kb &&
                    profiled.latency_ms <= device.latency_budget_ms;
    out.push_back(profiled);
  }
  return out;
}

profiled_model select_edge_model(const hardware_spec& device,
                                 const std::vector<models::model_spec>& pool) {
  const std::vector<profiled_model> profiled = profile_pool(device, pool);
  const profiled_model* best = nullptr;
  for (const profiled_model& candidate : profiled) {
    if (!candidate.fits) continue;
    if (best == nullptr || candidate.mflops > best->mflops) {
      best = &candidate;
    }
  }
  APPEAL_CHECK(best != nullptr,
               "no pool candidate fits device '" + device.name + "'");
  return *best;
}

std::vector<models::model_spec> default_model_pool(std::size_t image_size,
                                                   std::size_t num_classes) {
  std::vector<models::model_spec> pool;
  const models::model_family families[] = {
      models::model_family::mobilenet,
      models::model_family::shufflenet,
      models::model_family::efficientnet,
  };
  const float widths[] = {0.5F, 0.75F, 1.0F, 1.5F};
  for (const auto family : families) {
    for (const float width : widths) {
      models::model_spec spec;
      spec.family = family;
      spec.image_size = image_size;
      spec.num_classes = num_classes;
      spec.width = width;
      pool.push_back(spec);
    }
  }
  return pool;
}

}  // namespace appeal::core
