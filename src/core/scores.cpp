#include "core/scores.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace appeal::core {

score_method parse_score_method(const std::string& name) {
  const std::string lower = util::to_lower(name);
  if (lower == "msp") return score_method::msp;
  if (lower == "sm" || lower == "score_margin" || lower == "margin") {
    return score_method::score_margin;
  }
  if (lower == "entropy") return score_method::entropy;
  if (lower == "appealnet" || lower == "q" || lower == "appealnet_q") {
    return score_method::appealnet_q;
  }
  APPEAL_CHECK(false, "unknown score method: " + name);
  return score_method::msp;
}

std::string score_method_name(score_method method) {
  switch (method) {
    case score_method::msp:
      return "MSP";
    case score_method::score_margin:
      return "SM";
    case score_method::entropy:
      return "Entropy";
    case score_method::appealnet_q:
      return "AppealNet";
  }
  return "unknown";
}

std::vector<score_method> all_score_methods() {
  return {score_method::msp, score_method::score_margin,
          score_method::entropy, score_method::appealnet_q};
}

namespace {

void check_probs(const tensor& probabilities) {
  APPEAL_CHECK(probabilities.dims().rank() == 2,
               "scores expect [N, K] probabilities");
  APPEAL_CHECK(probabilities.dims().dim(1) >= 2,
               "scores require at least two classes");
}

}  // namespace

std::vector<double> msp_scores(const tensor& probabilities) {
  check_probs(probabilities);
  const std::size_t n = probabilities.dims().dim(0);
  const std::size_t k = probabilities.dims().dim(1);
  std::vector<double> out(n);
  const float* p = probabilities.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * k;
    out[i] = *std::max_element(row, row + k);
  }
  return out;
}

std::vector<double> score_margin_scores(const tensor& probabilities) {
  check_probs(probabilities);
  const std::size_t n = probabilities.dims().dim(0);
  const std::size_t k = probabilities.dims().dim(1);
  std::vector<double> out(n);
  const float* p = probabilities.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * k;
    float best = -1.0F;
    float second = -1.0F;
    for (std::size_t j = 0; j < k; ++j) {
      if (row[j] > best) {
        second = best;
        best = row[j];
      } else if (row[j] > second) {
        second = row[j];
      }
    }
    out[i] = static_cast<double>(best) - static_cast<double>(second);
  }
  return out;
}

std::vector<double> entropy_scores(const tensor& probabilities) {
  check_probs(probabilities);
  const std::size_t n = probabilities.dims().dim(0);
  const std::size_t k = probabilities.dims().dim(1);
  std::vector<double> out(n);
  const float* p = probabilities.data();
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = p + i * k;
    double negative_entropy = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (row[j] > 0.0F) {
        negative_entropy += static_cast<double>(row[j]) *
                            std::log(static_cast<double>(row[j]));
      }
    }
    out[i] = negative_entropy;  // paper's Entropy = sum p log p
  }
  return out;
}

std::vector<double> confidence_scores(score_method method,
                                      const tensor& probabilities) {
  switch (method) {
    case score_method::msp:
      return msp_scores(probabilities);
    case score_method::score_margin:
      return score_margin_scores(probabilities);
    case score_method::entropy:
      return entropy_scores(probabilities);
    case score_method::appealnet_q:
      APPEAL_CHECK(false,
                   "appealnet_q scores come from the predictor head; use "
                   "q_to_scores");
  }
  return {};
}

std::vector<double> q_to_scores(const std::vector<float>& q) {
  std::vector<double> out(q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    out[i] = static_cast<double>(q[i]);
  }
  return out;
}

}  // namespace appeal::core
