// Hardware profiler + efficient-DNN pool selection (paper Fig. 3).
//
// Given a hardware specification and a pool of candidate edge models, the
// profiler computes each candidate's cost on the device and selects the
// most capable model that fits the constraints — the front half of the
// AppealNet workflow, before the trainer takes over.
#pragma once

#include <string>
#include <vector>

#include "models/model_spec.hpp"
#include "tensor/shape.hpp"

namespace appeal::core {

/// Resource constraints of an edge device.
struct hardware_spec {
  std::string name = "edge-device";
  double compute_budget_mflops = 10.0;  // max per-inference cost
  double memory_budget_kb = 512.0;      // max parameter storage (fp32)
  double peak_gflops = 1.0;             // device throughput, for latency
  double latency_budget_ms = 50.0;      // max per-inference latency
};

/// One profiled candidate.
struct profiled_model {
  models::model_spec spec;
  double mflops = 0.0;       // per-inference forward cost
  double params_kb = 0.0;    // fp32 parameter storage
  double latency_ms = 0.0;   // mflops / device throughput
  bool fits = false;         // meets all three budgets
};

/// Profiles every pool candidate against the device (input shape
/// [1, C, H, W] built from the spec's image size).
std::vector<profiled_model> profile_pool(
    const hardware_spec& device, const std::vector<models::model_spec>& pool);

/// Selects the candidate with the highest compute (capacity proxy) among
/// those that fit; throws when nothing fits.
profiled_model select_edge_model(const hardware_spec& device,
                                 const std::vector<models::model_spec>& pool);

/// A default candidate pool: the three efficient families at a few widths.
std::vector<models::model_spec> default_model_pool(std::size_t image_size,
                                                   std::size_t num_classes);

}  // namespace appeal::core
