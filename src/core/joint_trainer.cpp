#include "core/joint_trainer.hpp"

#include <memory>

#include "data/dataloader.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/tensor_ops.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace appeal::core {

namespace {

std::unique_ptr<nn::optimizer> make_optimizer(const trainer_config& cfg) {
  if (cfg.optimizer == "sgd") {
    return std::make_unique<nn::sgd>(cfg.learning_rate, cfg.momentum,
                                     cfg.weight_decay);
  }
  APPEAL_CHECK(cfg.optimizer == "adam",
               "unknown optimizer: " + cfg.optimizer);
  return std::make_unique<nn::adam>(cfg.learning_rate, 0.9, 0.999, 1e-8,
                                    cfg.weight_decay);
}

std::unique_ptr<nn::lr_schedule> make_schedule(const trainer_config& cfg) {
  if (cfg.cosine_schedule) {
    return std::make_unique<nn::cosine_lr>(cfg.learning_rate, cfg.epochs,
                                           cfg.learning_rate * 0.05);
  }
  return std::make_unique<nn::constant_lr>(cfg.learning_rate);
}

double batch_accuracy(const tensor& logits,
                      const std::vector<std::size_t>& labels) {
  const auto preds = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace

training_log train_classifier(nn::layer& model, const data::dataset& train,
                              const data::dataset* val,
                              const trainer_config& cfg) {
  APPEAL_CHECK(cfg.epochs > 0, "train_classifier: epochs must be > 0");
  util::rng gen(cfg.seed);
  auto opt = make_optimizer(cfg);
  opt->attach(model.parameters());
  const auto schedule = make_schedule(cfg);

  data::data_loader loader(train, cfg.batch_size, /*shuffle=*/true,
                           gen.split());
  util::rng augment_gen = gen.split();

  training_log log;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt->set_learning_rate(schedule->learning_rate(epoch));
    loader.start_epoch();

    double loss_total = 0.0;
    double acc_total = 0.0;
    std::size_t batches = 0;
    while (auto maybe_batch = loader.next()) {
      data::batch& b = *maybe_batch;
      if (cfg.augment) {
        data::augment_batch(b.images, augment_gen, cfg.augmentation);
      }
      const tensor logits = model.forward(b.images, /*training=*/true);
      const nn::loss_result loss = nn::softmax_cross_entropy(logits, b.labels);
      opt->zero_grad();
      model.backward(loss.grad);
      opt->step();

      loss_total += loss.mean_loss;
      acc_total += batch_accuracy(logits, b.labels);
      ++batches;
    }

    epoch_stats stats;
    stats.mean_loss = loss_total / static_cast<double>(batches);
    stats.train_accuracy = acc_total / static_cast<double>(batches);
    log.epochs.push_back(stats);
    if (cfg.verbose) {
      APPEAL_LOG_INFO("trainer") << "epoch " << epoch + 1 << "/" << cfg.epochs
                      << " loss=" << util::format_fixed(stats.mean_loss, 4)
                      << " acc="
                      << util::format_percent(stats.train_accuracy);
    }
  }

  if (val != nullptr) {
    const tensor val_logits = eval_logits(model, *val);
    log.val_accuracy = logits_accuracy(val_logits, *val);
    if (cfg.verbose) {
      APPEAL_LOG_INFO("trainer") << "validation acc="
                      << util::format_percent(log.val_accuracy);
    }
  }
  return log;
}

namespace {

/// Adapter exposing the two-head approximator path as a plain layer so the
/// classifier trainer and evaluators can drive it.
class approximator_view : public nn::layer {
 public:
  explicit approximator_view(two_head_network& net) : net_(net) {}

  const char* kind() const override { return "approximator_view"; }
  tensor forward(const tensor& input, bool training) override {
    return net_.forward_approximator(input, training);
  }
  tensor backward(const tensor& grad_output) override {
    net_.backward_approximator(grad_output);
    return tensor();  // input gradient unused by the trainers
  }
  std::vector<nn::parameter*> parameters() override {
    return net_.approximator_parameters();
  }
  shape output_shape(const shape& input) const override {
    return shape{input.dim(0), net_.config().spec.num_classes};
  }

 private:
  two_head_network& net_;
};

}  // namespace

training_log pretrain_two_head(two_head_network& net,
                               const data::dataset& train,
                               const data::dataset* val,
                               const trainer_config& cfg) {
  approximator_view view(net);
  return train_classifier(view, train, val, cfg);
}

training_log train_joint(two_head_network& net, const data::dataset& train,
                         const data::dataset* val,
                         const std::vector<float>& big_losses,
                         const trainer_config& cfg,
                         const joint_loss_config& loss_cfg,
                         nn::layer* big_model) {
  APPEAL_CHECK(cfg.epochs > 0, "train_joint: epochs must be > 0");
  APPEAL_CHECK(loss_cfg.black_box || big_model != nullptr ||
                   big_losses.size() == train.size(),
               "train_joint: white-box mode needs a big model or one "
               "precomputed big loss per train sample");
  util::rng gen(cfg.seed);
  auto opt = make_optimizer(cfg);
  opt->attach(net.all_parameters());
  const auto schedule = make_schedule(cfg);

  data::data_loader loader(train, cfg.batch_size, /*shuffle=*/true,
                           gen.split());
  util::rng augment_gen = gen.split();

  training_log log;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    opt->set_learning_rate(schedule->learning_rate(epoch));
    loader.start_epoch();

    double loss_total = 0.0;
    double acc_total = 0.0;
    double q_total = 0.0;
    std::size_t batches = 0;
    while (auto maybe_batch = loader.next()) {
      data::batch& b = *maybe_batch;
      if (cfg.augment) {
        data::augment_batch(b.images, augment_gen, cfg.augmentation);
      }

      // l0 for this batch: run the frozen big network on the exact batch
      // (including augmentation) when available, else use the precomputed
      // per-sample values.
      std::vector<float> batch_big;
      if (!loss_cfg.black_box) {
        if (big_model != nullptr) {
          const tensor big_logits =
              big_model->forward(b.images, /*training=*/false);
          batch_big = nn::cross_entropy_values(big_logits, b.labels);
        } else {
          batch_big.resize(b.indices.size());
          for (std::size_t i = 0; i < b.indices.size(); ++i) {
            batch_big[i] = big_losses[b.indices[i]];
          }
        }
      }

      two_head_output out = net.forward(b.images, /*training=*/true);
      const joint_loss_result loss = compute_joint_loss(
          out.logits, out.q_logits, b.labels, batch_big, loss_cfg);
      opt->zero_grad();
      net.backward(loss.grad_logits, loss.grad_q_logits);
      opt->step();

      loss_total += loss.total_loss;
      acc_total += batch_accuracy(out.logits, b.labels);
      double q_sum = 0.0;
      for (const float q : loss.q) q_sum += q;
      q_total += q_sum / static_cast<double>(loss.q.size());
      ++batches;
    }

    epoch_stats stats;
    stats.mean_loss = loss_total / static_cast<double>(batches);
    stats.train_accuracy = acc_total / static_cast<double>(batches);
    stats.mean_q = q_total / static_cast<double>(batches);
    log.epochs.push_back(stats);
    if (cfg.verbose) {
      APPEAL_LOG_INFO("trainer") << "joint epoch " << epoch + 1 << "/" << cfg.epochs
                      << " loss=" << util::format_fixed(stats.mean_loss, 4)
                      << " acc=" << util::format_percent(stats.train_accuracy)
                      << " mean_q=" << util::format_fixed(stats.mean_q, 3);
    }
  }

  if (val != nullptr) {
    const two_head_eval eval = eval_two_head(net, *val);
    log.val_accuracy = logits_accuracy(eval.logits, *val);
    if (cfg.verbose) {
      APPEAL_LOG_INFO("trainer") << "joint validation acc="
                      << util::format_percent(log.val_accuracy);
    }
  }
  return log;
}

tensor eval_logits(nn::layer& model, const data::dataset& ds,
                   std::size_t batch_size) {
  APPEAL_CHECK(ds.size() > 0, "eval_logits on empty dataset");
  tensor all;
  std::size_t cursor = 0;
  std::size_t k = 0;
  while (cursor < ds.size()) {
    const std::size_t end = std::min(cursor + batch_size, ds.size());
    std::vector<std::size_t> rows;
    rows.reserve(end - cursor);
    for (std::size_t i = cursor; i < end; ++i) rows.push_back(i);
    const data::batch b = data::make_batch(ds, rows);
    const tensor logits = model.forward(b.images, /*training=*/false);
    if (all.empty()) {
      k = logits.dims().dim(1);
      all = tensor(shape{ds.size(), k});
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        all[(cursor + i) * k + j] = logits[i * k + j];
      }
    }
    cursor = end;
  }
  return all;
}

two_head_eval eval_two_head(two_head_network& net, const data::dataset& ds,
                            std::size_t batch_size) {
  APPEAL_CHECK(ds.size() > 0, "eval_two_head on empty dataset");
  two_head_eval result;
  result.q.resize(ds.size());
  std::size_t cursor = 0;
  std::size_t k = 0;
  while (cursor < ds.size()) {
    const std::size_t end = std::min(cursor + batch_size, ds.size());
    std::vector<std::size_t> rows;
    rows.reserve(end - cursor);
    for (std::size_t i = cursor; i < end; ++i) rows.push_back(i);
    const data::batch b = data::make_batch(ds, rows);
    two_head_output out = net.forward(b.images, /*training=*/false);
    if (result.logits.empty()) {
      k = out.logits.dims().dim(1);
      result.logits = tensor(shape{ds.size(), k});
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        result.logits[(cursor + i) * k + j] = out.logits[i * k + j];
      }
      result.q[cursor + i] = out.q[i];
    }
    cursor = end;
  }
  return result;
}

tensor eval_approximator_logits(two_head_network& net,
                                const data::dataset& ds,
                                std::size_t batch_size) {
  approximator_view view(net);
  return eval_logits(view, ds, batch_size);
}

std::vector<float> per_sample_losses(nn::layer& model,
                                     const data::dataset& ds,
                                     std::size_t batch_size) {
  const tensor logits = eval_logits(model, ds, batch_size);
  std::vector<std::size_t> labels(ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) labels[i] = ds.get(i).label;
  return nn::cross_entropy_values(logits, labels);
}

double logits_accuracy(const tensor& logits, const data::dataset& ds) {
  APPEAL_CHECK(logits.dims().dim(0) == ds.size(),
               "logits_accuracy: row count mismatch");
  const auto preds = ops::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == ds.get(i).label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace appeal::core
